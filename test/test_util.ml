open Cheffp_util

let check_float = Alcotest.(check (float 1e-12))

(* ------------------------------------------------------------------ *)
(* Growable                                                           *)

let test_growable_push_pop () =
  let g = Growable.create ~dummy:0 () in
  Alcotest.(check bool) "empty" true (Growable.is_empty g);
  Growable.push g 1;
  Growable.push g 2;
  Growable.push g 3;
  Alcotest.(check int) "length" 3 (Growable.length g);
  Alcotest.(check int) "top" 3 (Growable.top g);
  Alcotest.(check int) "pop" 3 (Growable.pop g);
  Alcotest.(check int) "pop" 2 (Growable.pop g);
  Alcotest.(check int) "length after pops" 1 (Growable.length g)

let test_growable_growth () =
  let g = Growable.create ~capacity:2 ~dummy:(-1) () in
  for i = 0 to 99 do
    Growable.push g i
  done;
  Alcotest.(check int) "length" 100 (Growable.length g);
  Alcotest.(check bool) "capacity grew" true (Growable.capacity g >= 100);
  for i = 0 to 99 do
    Alcotest.(check int) (Printf.sprintf "get %d" i) i (Growable.get g i)
  done

let test_growable_set_get () =
  let g = Growable.create ~dummy:0 () in
  Growable.push g 10;
  Growable.push g 20;
  Growable.set g 0 99;
  Alcotest.(check int) "set/get" 99 (Growable.get g 0);
  Alcotest.(check (list int)) "to_list" [ 99; 20 ] (Growable.to_list g);
  Alcotest.(check int) "to_array" 2 (Array.length (Growable.to_array g))

let test_growable_errors () =
  let g = Growable.create ~dummy:0 () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Growable.pop: empty")
    (fun () -> ignore (Growable.pop g));
  Growable.push g 1;
  Alcotest.check_raises "oob" (Invalid_argument "Growable: index 5 out of bounds [0,1)")
    (fun () -> ignore (Growable.get g 5))

let test_growable_clear_iter () =
  let g = Growable.create ~dummy:0 () in
  List.iter (Growable.push g) [ 1; 2; 3 ];
  let acc = ref 0 in
  Growable.iter (fun x -> acc := !acc + x) g;
  Alcotest.(check int) "iter sum" 6 !acc;
  let idx_sum = ref 0 in
  Growable.iteri (fun i _ -> idx_sum := !idx_sum + i) g;
  Alcotest.(check int) "iteri" 3 !idx_sum;
  Alcotest.(check int) "fold" 6 (Growable.fold_left ( + ) 0 g);
  Growable.clear g;
  Alcotest.(check int) "cleared" 0 (Growable.length g)

let test_growable_float () =
  let g = Growable.Float.create () in
  for i = 1 to 50 do
    Growable.Float.push g (float_of_int i)
  done;
  Alcotest.(check int) "peak" 50 (Growable.Float.peak_length g);
  for _ = 1 to 30 do
    ignore (Growable.Float.pop g)
  done;
  Alcotest.(check int) "length" 20 (Growable.Float.length g);
  Alcotest.(check int) "peak unchanged" 50 (Growable.Float.peak_length g);
  check_float "top" 20.0 (Growable.Float.top g);
  Growable.Float.set g 0 3.5;
  check_float "set/get" 3.5 (Growable.Float.get g 0);
  Growable.Float.clear g;
  Alcotest.(check bool) "empty" true (Growable.Float.is_empty g);
  Alcotest.(check int) "peak reset" 0 (Growable.Float.peak_length g)

let qcheck_growable_roundtrip =
  QCheck.Test.make ~count:200 ~name:"growable push*/to_list roundtrip"
    QCheck.(list int)
    (fun l ->
      let g = Growable.create ~dummy:0 () in
      List.iter (Growable.push g) l;
      Growable.to_list g = l)

let qcheck_growable_lifo =
  QCheck.Test.make ~count:200 ~name:"growable pops reverse pushes"
    QCheck.(list int)
    (fun l ->
      let g = Growable.create ~dummy:0 () in
      List.iter (Growable.push g) l;
      let popped = List.rev_map (fun _ -> Growable.pop g) l in
      popped = l)

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  Alcotest.(check bool) "different seeds differ" true
    (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_uniform_range () =
  let rng = Rng.create 8L in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng ~lo:(-2.) ~hi:3. in
    Alcotest.(check bool) "in [-2,3)" true (x >= -2. && x < 3.)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 9L in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Rng.gaussian rng ~mu:5. ~sigma:2.) in
  let mean = Stats.mean samples in
  let std = Stats.stddev samples in
  Alcotest.(check bool) "mean approx 5" true (Float.abs (mean -. 5.) < 0.1);
  Alcotest.(check bool) "std approx 2" true (Float.abs (std -. 2.) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 10L in
  let a = Array.init 100 (fun i -> i) in
  let b = Array.copy a in
  Rng.shuffle rng b;
  let sb = Array.copy b in
  Array.sort compare sb;
  Alcotest.(check bool) "same multiset" true (sb = a);
  Alcotest.(check bool) "actually shuffled" true (b <> a)

let test_rng_split_independent () =
  let rng = Rng.create 11L in
  let child = Rng.split rng in
  Alcotest.(check bool) "split differs from parent" true
    (Rng.next_int64 child <> Rng.next_int64 rng)

let test_rng_float_bound () =
  let rng = Rng.create 13L in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (x >= 0. && x < 2.5)
  done;
  let heads = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool rng then incr heads
  done;
  Alcotest.(check bool) "bool roughly balanced" true
    (!heads > 400 && !heads < 600)

let test_rng_copy () =
  let rng = Rng.create 12L in
  ignore (Rng.next_int64 rng);
  let dup = Rng.copy rng in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 rng)
    (Rng.next_int64 dup)

(* substream i must be a pure function of (seed, i): re-deriving it
   yields the same stream regardless of what was drawn from any other
   substream in between — this is the invariant that makes Monte-Carlo
   sweeps independent of chunking, lane width and pool job count. *)
let test_rng_substream_pure () =
  let draw seed i =
    let g = Rng.substream seed i in
    Array.init 8 (fun _ -> Rng.next_int64 g)
  in
  let first = Array.init 16 (fun i -> draw 42L i) in
  (* Interleave draws from other substreams, then re-derive: identical. *)
  ignore (draw 42L 3);
  ignore (draw 7L 0);
  Array.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "substream %d re-derives identically" i)
        true
        (draw 42L i = s))
    first

let test_rng_substream_distinct () =
  let lead seed i = Rng.next_int64 (Rng.substream seed i) in
  (* Distinct indices under one seed give distinct streams... *)
  let leads = Array.init 64 (fun i -> lead 42L i) in
  let sorted = Array.copy leads in
  Array.sort compare sorted;
  let dup = ref false in
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) = sorted.(i - 1) then dup := true
  done;
  Alcotest.(check bool) "64 substreams all distinct" true (not !dup);
  (* ...and the same index under distinct seeds differs too. *)
  Alcotest.(check bool) "seed sensitivity" true (lead 1L 5 <> lead 2L 5)

(* The scheduling invariance the sampler relies on, stated directly on
   the primitive: chunk [0..n) any way you like, derive each substream
   inside its chunk, and the per-index draws match the sequential
   derivation. *)
let test_rng_substream_chunk_invariance () =
  let n = 48 in
  let sample i = Rng.uniform (Rng.substream 99L i) ~lo:(-1.) ~hi:1. in
  let sequential = Array.init n sample in
  List.iter
    (fun chunk ->
      let got = Array.make n 0. in
      let rec go start =
        if start < n then begin
          let stop = min n (start + chunk) in
          for i = start to stop - 1 do
            got.(i) <- sample i
          done;
          go stop
        end
      in
      go 0;
      Alcotest.(check bool)
        (Printf.sprintf "chunk size %d matches sequential" chunk)
        true (got = sequential))
    [ 1; 5; 16; 48 ]

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)

let test_stats_sum_kahan () =
  (* Sum that defeats naive accumulation order effects. *)
  let a = Array.make 10_000 0.1 in
  let s = Stats.sum a in
  Alcotest.(check bool) "compensated" true (Float.abs (s -. 1000.) < 1e-10)

let test_stats_basics () =
  let a = [| 3.; 1.; 4.; 1.; 5. |] in
  check_float "mean" 2.8 (Stats.mean a);
  check_float "max" 5. (Stats.max a);
  check_float "min" 1. (Stats.min a);
  check_float "median" 3. (Stats.median a);
  check_float "mean empty" 0. (Stats.mean [||])

let test_stats_median_even () =
  check_float "even median" 2.5 (Stats.median [| 1.; 2.; 3.; 4. |])

let test_stats_percentile () =
  let a = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50. (Stats.percentile a 50.);
  check_float "p100" 100. (Stats.percentile a 100.);
  check_float "p1" 1. (Stats.percentile a 1.)

let test_stats_stddev () =
  let a = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "population stddev" 2. (Stats.stddev a);
  check_float "short" 0. (Stats.stddev [| 1. |])

let test_stats_geomean () =
  check_float "geomean" 4. (Stats.geomean [| 2.; 8. |]);
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.geomean: non-positive element") (fun () ->
      ignore (Stats.geomean [| 1.; -1. |]))

let test_stats_errors () =
  Alcotest.check_raises "max empty" (Invalid_argument "Stats.max: empty")
    (fun () -> ignore (Stats.max [||]));
  Alcotest.check_raises "abs_diffs mismatch"
    (Invalid_argument "Stats.abs_diffs: length mismatch") (fun () ->
      ignore (Stats.abs_diffs [| 1. |] [||]))

let test_stats_abs_diffs () =
  let d = Stats.abs_diffs [| 1.; 5. |] [| 3.; 2. |] in
  check_float "d0" 2. d.(0);
  check_float "d1" 3. d.(1)

let qcheck_mean_bounded =
  QCheck.Test.make ~count:200 ~name:"mean within [min,max]"
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1e6) 1e6))
    (fun l ->
      let a = Array.of_list l in
      let m = Stats.mean a in
      m >= Stats.min a -. 1e-6 && m <= Stats.max a +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Table                                                              *)

let test_table_render () =
  let s =
    Table.render ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  Alcotest.(check bool) "has header" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> String.length l > 0 && l.[0] = '|') lines);
  Alcotest.(check int) "line count" 6
    (List.length (String.split_on_char '\n' s))

let test_table_pads_short_rows () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] [ [ "only-one" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_table_aligns () =
  let s =
    Table.render
      ~aligns:[ Table.Right; Table.Left ]
      ~header:[ "n"; "name" ]
      [ [ "1"; "a" ]; [ "22"; "bb" ] ]
  in
  (* right-aligned first column pads on the left *)
  Alcotest.(check bool) "right alignment applied" true
    (let lines = String.split_on_char '\n' s in
     List.exists (fun l -> String.length l > 3 && l.[0] = '|' && l.[1] = ' '
                           && l.[2] = ' ' && l.[3] = '1') lines);
  (* mismatched aligns length falls back to defaults without raising *)
  let s2 = Table.render ~aligns:[ Table.Left ] ~header:[ "a"; "b" ] [] in
  Alcotest.(check bool) "fallback" true (String.length s2 > 0)

let test_table_formats () =
  Alcotest.(check string) "fe" "3.24e-06" (Table.fe 3.24e-6);
  Alcotest.(check string) "ff" "2.25" (Table.ff 2.25)

(* ------------------------------------------------------------------ *)
(* Meter                                                              *)

let test_meter_accounting () =
  let m = Meter.create () in
  Meter.alloc m 100;
  Meter.alloc m 50;
  Alcotest.(check int) "live" 150 (Meter.live_bytes m);
  Meter.free m 120;
  Alcotest.(check int) "after free" 30 (Meter.live_bytes m);
  Alcotest.(check int) "peak" 150 (Meter.peak_bytes m);
  Meter.free m 1000;
  Alcotest.(check int) "never negative" 0 (Meter.live_bytes m);
  Meter.reset m;
  Alcotest.(check int) "reset" 0 (Meter.peak_bytes m)

let test_meter_budget () =
  let m = Meter.create () in
  Meter.set_budget m (Some 100);
  Meter.alloc m 90;
  Alcotest.(check bool) "budget raise" true
    (try
       Meter.alloc m 20;
       false
     with Meter.Out_of_memory_budget { requested; budget } ->
       requested = 110 && budget = 100);
  Meter.set_budget m None;
  Meter.alloc m 1000;
  Alcotest.(check int) "unbounded" 1090 (Meter.live_bytes m)

let test_meter_time () =
  let x, t = Meter.time (fun () -> 42) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "time non-negative" true (t >= 0.)

let test_meter_bytes_pp () =
  Alcotest.(check string) "B" "512 B" (Meter.bytes_pp 512);
  Alcotest.(check string) "kB" "1.50 kB" (Meter.bytes_pp 1500);
  Alcotest.(check string) "MB" "2.00 MB" (Meter.bytes_pp 2_000_000);
  Alcotest.(check string) "GB" "3.00 GB" (Meter.bytes_pp 3_000_000_000)

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)

exception Boom of int

let test_pool_order_preserved () =
  let xs = List.init 100 Fun.id in
  (* Jittered work so completion order differs from input order. *)
  let f i =
    if i mod 7 = 0 then Unix.sleepf 0.002;
    i * i
  in
  Alcotest.(check (list int))
    "jobs=4 preserves order" (List.map (fun i -> i * i) xs)
    (Pool.parallel_map ~jobs:4 f xs);
  Alcotest.(check (list int))
    "jobs=1 preserves order" (List.map (fun i -> i * i) xs)
    (Pool.parallel_map ~jobs:1 f xs)

let test_pool_sequential_fallback () =
  (* jobs <= 1 must not spawn: the mapped function can then rely on
     domain-local state, and effects happen strictly left to right. *)
  let self = Domain.self () in
  let seen = ref [] in
  let r =
    Pool.parallel_map ~jobs:1
      (fun i ->
        Alcotest.(check bool) "same domain" true (Domain.self () = self);
        seen := i :: !seen;
        i + 1)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "results" [ 2; 3; 4 ] r;
  Alcotest.(check (list int)) "left-to-right effects" [ 3; 2; 1 ] !seen;
  Alcotest.(check (list int)) "jobs=0 also sequential" [ 2; 3 ]
    (Pool.parallel_map ~jobs:0 (fun i -> i + 1) [ 1; 2 ])

let test_pool_exception_propagation () =
  let f i = if i >= 10 then raise (Boom i) else i in
  (match Pool.parallel_map ~jobs:4 f (List.init 40 Fun.id) with
  | _ -> Alcotest.fail "expected an exception"
  | exception Boom i ->
      (* The smallest failing index wins (deterministic under jobs=1;
         under contention, some failing item's exception arrives). *)
      Alcotest.(check bool) "a failing item's exception" true (i >= 10));
  match Pool.parallel_map ~jobs:1 f (List.init 40 Fun.id) with
  | _ -> Alcotest.fail "expected an exception"
  | exception Boom i -> Alcotest.(check int) "first failure sequentially" 10 i

let test_pool_edge_cases () =
  Alcotest.(check (list int)) "empty" [] (Pool.parallel_map ~jobs:4 Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 7 ]
    (Pool.parallel_map ~jobs:4 (fun x -> x + 1) [ 6 ]);
  Alcotest.(check (list int)) "more jobs than items" [ 2; 3 ]
    (Pool.parallel_map ~jobs:64 (fun x -> x + 1) [ 1; 2 ]);
  Alcotest.(check bool) "default_jobs at least 1" true (Pool.default_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* Pool.Shared (the serve daemon's work-stealing request pool)        *)

let test_shared_basic () =
  let p = Pool.Shared.create ~workers:2 () in
  let sub = Pool.Shared.add_submitter p in
  let futs = List.init 100 (fun i -> Pool.Shared.submit p sub (fun () -> i * i)) in
  List.iteri
    (fun i f ->
      match Pool.Shared.await f with
      | Ok v -> Alcotest.(check int) "task result" (i * i) v
      | Error e -> Alcotest.fail (Printexc.to_string e))
    futs;
  Pool.Shared.drain p;
  Alcotest.(check int) "drained queue" 0 (Pool.Shared.queue_depth p);
  Alcotest.(check int) "nothing in flight" 0 (Pool.Shared.in_flight p);
  (* Exceptions resolve the future, they do not kill the worker. *)
  (match Pool.Shared.await (Pool.Shared.submit p sub (fun () -> raise (Boom 3))) with
  | Error (Boom 3) -> ()
  | _ -> Alcotest.fail "expected Boom to surface through await");
  (match
     Pool.Shared.await (Pool.Shared.submit p sub (fun () -> "still alive"))
   with
  | Ok s -> Alcotest.(check string) "worker survived" "still alive" s
  | Error e -> Alcotest.fail (Printexc.to_string e));
  Pool.Shared.remove_submitter p sub;
  Pool.Shared.shutdown p;
  Alcotest.(check bool) "submit after shutdown raises" true
    (try
       ignore (Pool.Shared.submit p sub Fun.id);
       false
     with Failure _ -> true)

(* A single gated worker makes dispatch order observable: while the
   gate task occupies the only worker, everything else queues, and the
   release order is exactly the admission policy's. *)
let with_gated_worker f =
  let p = Pool.Shared.create ~workers:1 () in
  let gate_m = Mutex.create () and gate_cv = Condition.create () in
  let open_ = ref false in
  let sub = Pool.Shared.add_submitter p in
  let gate =
    Pool.Shared.submit p sub (fun () ->
        Mutex.lock gate_m;
        while not !open_ do
          Condition.wait gate_cv gate_m
        done;
        Mutex.unlock gate_m)
  in
  (* Wait until the gate task actually occupies the worker (queue
     empty, task active), so later submissions cannot jump ahead of
     each other via an idle worker. *)
  while Pool.Shared.queue_depth p > 0 do
    Domain.cpu_relax ()
  done;
  let release () =
    Mutex.lock gate_m;
    open_ := true;
    Condition.broadcast gate_cv;
    Mutex.unlock gate_m;
    ignore (Pool.Shared.await gate)
  in
  let r = f p sub release in
  Pool.Shared.shutdown p;
  r

let test_shared_priority_deadline () =
  with_gated_worker (fun p sub release ->
      let order_m = Mutex.create () in
      let order = ref [] in
      let mark name () =
        Mutex.lock order_m;
        order := name :: !order;
        Mutex.unlock order_m
      in
      let now = Unix.gettimeofday () in
      (* Bindings force submission (seq) order — a list literal would
         evaluate its elements right to left. *)
      let f1 = Pool.Shared.submit p sub ~priority:0 (mark "low-early") in
      let f2 =
        Pool.Shared.submit p sub ~priority:0 ~deadline:(now +. 1.)
          (mark "deadline-tight")
      in
      let f3 =
        Pool.Shared.submit p sub ~priority:0 ~deadline:(now +. 9.)
          (mark "deadline-loose")
      in
      let f4 = Pool.Shared.submit p sub ~priority:5 (mark "high-late") in
      let futs = [ f1; f2; f3; f4 ] in
      release ();
      List.iter (fun f -> ignore (Pool.Shared.await f)) futs;
      (* Priority beats submission order; among equal priorities an
         earlier deadline beats a later one beats none (infinity);
         untied leftovers keep submission order. *)
      Alcotest.(check (list string))
        "admission order: priority, then deadline, then seq"
        [ "high-late"; "deadline-tight"; "deadline-loose"; "low-early" ]
        (List.rev !order))

let test_shared_round_robin () =
  with_gated_worker (fun p _gate_sub release ->
      let a = Pool.Shared.add_submitter p in
      let b = Pool.Shared.add_submitter p in
      let order_m = Mutex.create () in
      let order = ref [] in
      let mark name () =
        Mutex.lock order_m;
        order := name :: !order;
        Mutex.unlock order_m
      in
      (* Bindings force submission (seq) order — a list literal would
         evaluate its elements right to left. *)
      let fa1 = Pool.Shared.submit p a (mark "a1") in
      let fa2 = Pool.Shared.submit p a (mark "a2") in
      let fb1 = Pool.Shared.submit p b (mark "b1") in
      let fb2 = Pool.Shared.submit p b (mark "b2") in
      let futs = [ fa1; fa2; fb1; fb2 ] in
      release ();
      List.iter (fun f -> ignore (Pool.Shared.await f)) futs;
      (* Equal priorities: the rotating scan alternates between the two
         queues instead of draining the flooded one first — a queue
         only delays its own tasks. *)
      let got = List.rev !order in
      Alcotest.(check bool)
        (Printf.sprintf "round-robin across submitters (got %s)"
           (String.concat "," got))
        true
        (got = [ "a1"; "b1"; "a2"; "b2" ] || got = [ "b1"; "a1"; "b2"; "a2" ]);
      Pool.Shared.remove_submitter p a;
      Pool.Shared.remove_submitter p b)

let test_shared_cancel_on_remove () =
  with_gated_worker (fun p _gate_sub release ->
      let doomed = Pool.Shared.add_submitter p in
      let ran = Atomic.make 0 in
      let futs =
        List.init 5 (fun _ ->
            Pool.Shared.submit p doomed (fun () -> Atomic.incr ran))
      in
      Alcotest.(check int) "tasks queued behind the gate" 5
        (Pool.Shared.queue_depth p);
      Pool.Shared.remove_submitter p doomed;
      Alcotest.(check int) "queue emptied by removal" 0
        (Pool.Shared.queue_depth p);
      List.iter
        (fun f ->
          match Pool.Shared.await f with
          | Error Pool.Shared.Cancelled -> ()
          | Ok _ -> Alcotest.fail "cancelled task ran"
          | Error e -> Alcotest.fail (Printexc.to_string e))
        futs;
      release ();
      Pool.Shared.drain p;
      Alcotest.(check int) "no cancelled task executed" 0 (Atomic.get ran))

let () =
  Alcotest.run "util"
    [
      ( "growable",
        [
          Alcotest.test_case "push/pop" `Quick test_growable_push_pop;
          Alcotest.test_case "growth" `Quick test_growable_growth;
          Alcotest.test_case "set/get" `Quick test_growable_set_get;
          Alcotest.test_case "errors" `Quick test_growable_errors;
          Alcotest.test_case "clear/iter" `Quick test_growable_clear_iter;
          Alcotest.test_case "float variant" `Quick test_growable_float;
          QCheck_alcotest.to_alcotest qcheck_growable_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_growable_lifo;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutation" `Quick
            test_rng_shuffle_permutation;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "float/bool" `Quick test_rng_float_bound;
          Alcotest.test_case "substream purity" `Quick test_rng_substream_pure;
          Alcotest.test_case "substream distinctness" `Quick
            test_rng_substream_distinct;
          Alcotest.test_case "substream chunk invariance" `Quick
            test_rng_substream_chunk_invariance;
        ] );
      ( "stats",
        [
          Alcotest.test_case "kahan sum" `Quick test_stats_sum_kahan;
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "median even" `Quick test_stats_median_even;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "errors" `Quick test_stats_errors;
          Alcotest.test_case "abs_diffs" `Quick test_stats_abs_diffs;
          QCheck_alcotest.to_alcotest qcheck_mean_bounded;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "aligns" `Quick test_table_aligns;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
      ( "meter",
        [
          Alcotest.test_case "accounting" `Quick test_meter_accounting;
          Alcotest.test_case "budget" `Quick test_meter_budget;
          Alcotest.test_case "time" `Quick test_meter_time;
          Alcotest.test_case "bytes_pp" `Quick test_meter_bytes_pp;
        ] );
      ( "pool",
        [
          Alcotest.test_case "order preserved" `Quick test_pool_order_preserved;
          Alcotest.test_case "sequential fallback" `Quick
            test_pool_sequential_fallback;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "edge cases" `Quick test_pool_edge_cases;
          Alcotest.test_case "shared pool basics" `Quick test_shared_basic;
          Alcotest.test_case "shared pool priority/deadline" `Quick
            test_shared_priority_deadline;
          Alcotest.test_case "shared pool round-robin fairness" `Quick
            test_shared_round_robin;
          Alcotest.test_case "shared pool cancel on remove" `Quick
            test_shared_cancel_on_remove;
        ] );
    ]
