(* Figures 4-9 of the paper: analysis time + peak analysis memory of
   CHEF-FP vs ADAPT vs the original program, swept over workload size,
   plus the HPCCG per-iteration sensitivity heatmap. Workload sizes are
   scaled to a 1-core / 1 GiB-emulated-budget machine; EXPERIMENTS.md
   maps each sweep back to the paper's. *)

open Common
module B = Cheffp_benchmarks
module Interp = Cheffp_ir.Interp
module Pool = Cheffp_util.Pool

(* Sweep points are independent measurements: with [jobs > 1] they fan
   out across domains (each point keeps its own estimate, tape and
   workload, so results are unchanged; per-point wall times get noisier
   under contention, which the default [jobs = 1] avoids). *)
let sweep_map ~jobs f sizes = Pool.parallel_map ~jobs f sizes

let fig4 ?(jobs = 1) ?(sizes = [ 10_000; 30_000; 100_000; 300_000; 1_000_000 ])
    () =
  let points =
    sweep_map ~jobs
      (fun n ->
        measure_point ~size:n
          ~original:(fun () -> ignore (B.Arclength.reference ~n))
          ~prog:B.Arclength.program ~func:B.Arclength.func_name
          ~args:(B.Arclength.args ~n)
          ~adapt_run:(fun tape ->
            let module N = (val Cheffp_adapt.Adapt.num tape) in
            let module A = B.Arclength.Native (N) in
            A.run ~n)
          ())
      sizes
  in
  let sweep = { label = "Arc Length"; points } in
  print_sweep ~title:"Figure 4: Arc Length (analysis time & memory vs iterations)"
    ~size_label:"iterations" sweep;
  sweep

let fig5 ?(jobs = 1) () =
  let a = 0.0 and b = Float.pi in
  let sizes = [ 30_000; 100_000; 300_000; 1_000_000; 3_000_000 ] in
  let points =
    sweep_map ~jobs
      (fun n ->
        measure_point ~size:n
          ~original:(fun () -> ignore (B.Simpsons.reference ~a ~b ~n))
          ~prog:B.Simpsons.program ~func:B.Simpsons.func_name
          ~args:(B.Simpsons.args ~a ~b ~n)
          ~adapt_run:(fun tape ->
            let module N = (val Cheffp_adapt.Adapt.num tape) in
            let module S = B.Simpsons.Native (N) in
            S.run ~a ~b ~n)
          ())
      sizes
  in
  let sweep = { label = "Simpsons"; points } in
  print_sweep ~title:"Figure 5: Simpsons (analysis time & memory vs iterations)"
    ~size_label:"iterations" sweep;
  sweep

let fig6 ?(jobs = 1) () =
  let sizes = [ 3_000; 10_000; 30_000; 100_000; 300_000 ] in
  let points =
    sweep_map ~jobs
      (fun npoints ->
        let w = B.Kmeans.generate ~npoints () in
        measure_point ~size:npoints
          ~original:(fun () -> ignore (B.Kmeans.reference w))
          ~prog:B.Kmeans.program ~func:B.Kmeans.func_name
          ~args:(B.Kmeans.args w)
          ~adapt_run:(fun tape ->
            let module N = (val Cheffp_adapt.Adapt.num tape) in
            let module K = B.Kmeans.Native (N) in
            K.run w)
          ())
      sizes
  in
  let sweep = { label = "k-Means"; points } in
  print_sweep ~title:"Figure 6: k-Means (analysis time & memory vs datapoints)"
    ~size_label:"datapoints" sweep;
  sweep

let fig7 ?(jobs = 1) () =
  (* Paper: 20x30xN domain to N=320 on 188 GB; scaled to 20x30xN with
     N in 2..32 and 15 CG iterations for the 1 GiB budget. *)
  let sizes = [ 2; 4; 8; 16; 32 ] in
  let points =
    sweep_map ~jobs
      (fun nz ->
        let w = B.Hpccg.generate ~nx:20 ~ny:30 ~nz ~max_iter:15 () in
        measure_point ~size:nz
          ~original:(fun () -> ignore (B.Hpccg.reference w))
          ~prog:B.Hpccg.program ~func:B.Hpccg.func_name ~args:(B.Hpccg.args w)
          ~adapt_run:(fun tape ->
            let module N = (val Cheffp_adapt.Adapt.num tape) in
            let module H = B.Hpccg.Native (N) in
            H.run w)
          ())
      sizes
  in
  let sweep = { label = "HPCCG"; points } in
  print_sweep
    ~title:"Figure 7: HPCCG (analysis time & memory vs z-dimension, 20x30xN)"
    ~size_label:"nz" sweep;
  sweep

let fig8 ?(jobs = 1) () =
  let sizes = [ 3_000; 10_000; 30_000; 100_000; 300_000 ] in
  let prog = B.Blackscholes.program B.Blackscholes.Exact in
  let points =
    sweep_map ~jobs
      (fun n ->
        let w = B.Blackscholes.generate ~n () in
        measure_point ~size:n
          ~original:(fun () -> ignore (B.Blackscholes.reference w))
          ~prog ~func:B.Blackscholes.func_name ~args:(B.Blackscholes.args w)
          ~adapt_run:(fun tape ->
            let module N = (val Cheffp_adapt.Adapt.num tape) in
            let module S = B.Blackscholes.Native (N) in
            S.run w)
          ())
      sizes
  in
  let sweep = { label = "Black-Scholes"; points } in
  print_sweep
    ~title:"Figure 8: Black-Scholes (analysis time & memory vs options)"
    ~size_label:"options" sweep;
  sweep

(* Fig. 9: normalized per-iteration sensitivity of r, p, x, Ap over the
   HPCCG main loop, plus the cutoff the split-loop rewrite uses. *)
let fig9 ?(nx = 20) ?(ny = 30) ?(nz = 10) ?(max_iter = 60) () =
  let w = B.Hpccg.generate ~nx ~ny ~nz ~max_iter () in
  let est =
    Cheffp_core.Estimate.estimate_error
      ~model:(Cheffp_core.Model.adapt ())
      ~options:
        {
          Cheffp_core.Estimate.default_options with
          track_iterations = `Loop "iter";
        }
      ~prog:B.Hpccg.program ~func:B.Hpccg.func_name ()
  in
  let report = Cheffp_core.Estimate.run est (B.Hpccg.args w) in
  let wanted = [ "r"; "p"; "x"; "ap" ] in
  let records =
    List.filter
      (fun (v, _) -> List.mem (String.lowercase_ascii v) wanted)
      report.Cheffp_core.Estimate.per_iteration
  in
  let _, series = Cheffp_core.Sensitivity.normalized records in
  (* Normalize each row to its own max for display, like the paper. *)
  let series_rows =
    List.map
      (fun (name, a) ->
        let m = Array.fold_left Float.max 0. a in
        (name, if m > 0. then Array.map (fun v -> v /. m) a else a))
      series
  in
  Printf.printf
    "\n== Figure 9: HPCCG variable sensitivity heatmap (20x30x%d, %d iters) ==\n"
    nz max_iter;
  print_string (Cheffp_core.Sensitivity.heatmap ~cols:60 series_rows);
  let cutoff =
    Cheffp_core.Sensitivity.below_threshold_after series ~threshold:1e-10
  in
  Printf.printf
    "globally-normalized sensitivity < 1e-10 for all variables from iteration %d\n"
    cutoff;
  cutoff

let run_all ?(jobs = 1) () =
  let sweeps =
    [ fig4 ~jobs (); fig5 ~jobs (); fig6 ~jobs (); fig7 ~jobs (); fig8 ~jobs () ]
  in
  ignore (fig9 ());
  sweeps
