(* Performance tracking for the tuning hot path: times Search.tune
   sequentially (-j 1), domain-parallel (-j N), and warm-cache, checks
   the outcomes are bit-identical, and emits the numbers both as a table
   and as machine-readable BENCH_search.json (written next to the
   tables, i.e. in the current directory) so the perf trajectory of
   future PRs can be tracked. *)

module B = Cheffp_benchmarks
module Search = Cheffp_core.Search
module Tuner = Cheffp_core.Tuner
module Compile_cache = Cheffp_ir.Compile_cache
module Meter = Cheffp_util.Meter
module Table = Cheffp_util.Table
module Pool = Cheffp_util.Pool

type workload = {
  name : string;
  prog : Cheffp_ir.Ast.program;
  func : string;
  args : Cheffp_ir.Interp.arg list;
  threshold : float;
}

(* Thresholds are chosen below each benchmark's all-demoted error so the
   search takes its expensive path (individual probing + greedy growth)
   — the regime the paper's SS I cost argument is about, and the one the
   worker pool accelerates. *)
let default_workloads ?(scale = 1) () =
  let n = 60_000 * scale in
  [
    {
      name = "arclength";
      prog = B.Arclength.program;
      func = B.Arclength.func_name;
      args = B.Arclength.args ~n;
      threshold = 1e-6;
    };
    {
      name = "simpsons";
      prog = B.Simpsons.program;
      func = B.Simpsons.func_name;
      args = B.Simpsons.args ~a:0. ~b:Float.pi ~n;
      threshold = 1e-10;
    };
    {
      name = "kmeans";
      prog = B.Kmeans.program;
      func = B.Kmeans.func_name;
      args = B.Kmeans.args (B.Kmeans.generate ~npoints:(3_000 * scale) ());
      threshold = 1e-7;
    };
  ]

let smoke_workloads () =
  default_workloads ~scale:1 ()
  |> List.map (fun w ->
         match w.name with
         | "arclength" ->
             { w with args = B.Arclength.args ~n:2_000 }
         | "simpsons" ->
             { w with args = B.Simpsons.args ~a:0. ~b:Float.pi ~n:2_000 }
         | "kmeans" ->
             { w with args = B.Kmeans.args (B.Kmeans.generate ~npoints:300 ()) }
         | _ -> w)

type row = {
  w : workload;
  executions : int;
  demoted : int;
  seq_s : float;  (** jobs = 1, cold compile cache *)
  par_s : float;  (** jobs = par_jobs, cold compile cache *)
  par_jobs : int;
  warm_s : float;  (** jobs = 1 again, warm compile cache *)
  cache : Compile_cache.stats;  (** stats of the warm run *)
  identical : bool;  (** seq and par outcomes bit-identical *)
}

let same_outcome (a : Search.outcome) (b : Search.outcome) =
  a.Search.demoted = b.Search.demoted
  && a.Search.executions = b.Search.executions
  && a.Search.evaluation.Tuner.actual_error
     = b.Search.evaluation.Tuner.actual_error
  && a.Search.evaluation.Tuner.modelled_speedup
     = b.Search.evaluation.Tuner.modelled_speedup

let measure ~jobs w =
  let tune j =
    Search.tune ~jobs:j ~prog:w.prog ~func:w.func ~args:w.args
      ~threshold:w.threshold ()
  in
  Gc.compact ();
  Compile_cache.clear ();
  let seq, seq_s = Meter.time (fun () -> tune 1) in
  Gc.compact ();
  Compile_cache.clear ();
  let par, par_s = Meter.time (fun () -> tune jobs) in
  (* Third run without clearing: every configuration the search visits
     was compiled by the run above, so this isolates the compile cache's
     contribution (and its stats prove the hits happened). *)
  Gc.compact ();
  Compile_cache.reset_stats ();
  let warm, warm_s = Meter.time (fun () -> tune 1) in
  let cache = Compile_cache.stats () in
  {
    w;
    executions = seq.Search.executions;
    demoted = List.length seq.Search.demoted;
    seq_s;
    par_s;
    par_jobs = jobs;
    warm_s;
    cache;
    identical = same_outcome seq par && same_outcome seq warm;
  }

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~path rows =
  let oc = open_out path in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"bench\": \"search\",\n";
  pf "  \"description\": \"Search.tune wall clock: sequential vs domain-parallel vs warm compile cache\",\n";
  pf "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ());
  pf "  \"default_jobs\": %d,\n" (Pool.default_jobs ());
  (if Domain.recommended_domain_count () < 2 then
     pf
       "  \"note\": \"single-core host: domains time-slice one CPU, so \
        parallel_speedup < 1 here; re-run on a multi-core host for the \
        parallel numbers\",\n");
  pf "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      pf "    {\n";
      pf "      \"name\": \"%s\",\n" (json_escape r.w.name);
      pf "      \"threshold\": %.17g,\n" r.w.threshold;
      pf "      \"executions\": %d,\n" r.executions;
      pf "      \"demoted\": %d,\n" r.demoted;
      pf "      \"seconds_jobs1\": %.6f,\n" r.seq_s;
      pf "      \"jobs\": %d,\n" r.par_jobs;
      pf "      \"seconds_jobsN\": %.6f,\n" r.par_s;
      pf "      \"parallel_speedup\": %.3f,\n"
        (if r.par_s > 0. then r.seq_s /. r.par_s else 1.);
      pf "      \"seconds_warm_cache\": %.6f,\n" r.warm_s;
      pf "      \"warm_cache_speedup\": %.3f,\n"
        (if r.warm_s > 0. then r.seq_s /. r.warm_s else 1.);
      pf "      \"cache_hits\": %d,\n" r.cache.Compile_cache.hits;
      pf "      \"cache_misses\": %d,\n" r.cache.Compile_cache.misses;
      pf "      \"outcomes_identical\": %b\n" r.identical;
      pf "    }%s\n" (if i < List.length rows - 1 then "," else ""))
    rows;
  pf "  ]\n";
  pf "}\n";
  close_out oc

let print_rows rows =
  Table.print
    ~header:
      [
        "workload"; "runs"; "demoted"; "-j 1"; "-j N"; "par x"; "warm cache";
        "cache x"; "hits"; "identical";
      ]
    (List.map
       (fun r ->
         [
           r.w.name;
           string_of_int r.executions;
           string_of_int r.demoted;
           Printf.sprintf "%.3f s" r.seq_s;
           Printf.sprintf "%.3f s (j=%d)" r.par_s r.par_jobs;
           Printf.sprintf "%.2fx" (r.seq_s /. r.par_s);
           Printf.sprintf "%.3f s" r.warm_s;
           Printf.sprintf "%.2fx" (r.seq_s /. r.warm_s);
           string_of_int r.cache.Compile_cache.hits;
           string_of_bool r.identical;
         ])
       rows)

let search_bench ?(jobs = 4) ?(out = "BENCH_search.json") ?(workloads = default_workloads ())
    () =
  Printf.printf
    "\n== Search.tune hot path: sequential vs %d domains vs warm compile cache ==\n"
    jobs;
  Printf.printf "(host reports %d core(s); parallel speedup needs > 1)\n"
    (Domain.recommended_domain_count ());
  let rows = List.map (measure ~jobs) workloads in
  print_rows rows;
  write_json ~path:out rows;
  Printf.printf "wrote %s\n" out;
  rows
