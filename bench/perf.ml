(* Performance tracking for the tuning hot path: times Search.tune
   sequentially (-j 1), domain-parallel (-j N), and warm-cache, checks
   the outcomes are bit-identical, and emits the numbers both as a table
   and as machine-readable BENCH_search.json (written next to the
   tables, i.e. in the current directory) so the perf trajectory of
   future PRs can be tracked. *)

module B = Cheffp_benchmarks
module Search = Cheffp_core.Search
module Tuner = Cheffp_core.Tuner
module Compile_cache = Cheffp_ir.Compile_cache
module Meter = Cheffp_util.Meter
module Table = Cheffp_util.Table
module Pool = Cheffp_util.Pool
module Trace = Cheffp_obs.Trace
module Metrics = Cheffp_obs.Metrics

type workload = {
  name : string;
  prog : Cheffp_ir.Ast.program;
  func : string;
  args : Cheffp_ir.Interp.arg list;
  threshold : float;
}

(* Thresholds are chosen below each benchmark's all-demoted error so the
   search takes its expensive path (individual probing + greedy growth)
   — the regime the paper's SS I cost argument is about, and the one the
   worker pool accelerates. *)
let default_workloads ?(scale = 1) () =
  let n = 60_000 * scale in
  [
    {
      name = "arclength";
      prog = B.Arclength.program;
      func = B.Arclength.func_name;
      args = B.Arclength.args ~n;
      threshold = 1e-6;
    };
    {
      name = "simpsons";
      prog = B.Simpsons.program;
      func = B.Simpsons.func_name;
      args = B.Simpsons.args ~a:0. ~b:Float.pi ~n;
      threshold = 1e-10;
    };
    {
      name = "kmeans";
      prog = B.Kmeans.program;
      func = B.Kmeans.func_name;
      args = B.Kmeans.args (B.Kmeans.generate ~npoints:(3_000 * scale) ());
      threshold = 1e-7;
    };
  ]

let smoke_workloads () =
  default_workloads ~scale:1 ()
  |> List.map (fun w ->
         match w.name with
         | "arclength" ->
             { w with args = B.Arclength.args ~n:2_000 }
         | "simpsons" ->
             { w with args = B.Simpsons.args ~a:0. ~b:Float.pi ~n:2_000 }
         | "kmeans" ->
             { w with args = B.Kmeans.args (B.Kmeans.generate ~npoints:300 ()) }
         | _ -> w)

(* The batch block covers all five paper workloads (the search trio
   plus per-option Black-Scholes and HPCCG): thresholds sit below each
   benchmark's all-demoted error so the search takes the expensive
   probe + grow path — the phase batching amortizes. *)
let batch_workloads ?(small = false) () =
  let base = if small then smoke_workloads () else default_workloads () in
  let blackscholes =
    let w = B.Blackscholes.generate ~n:4 () in
    {
      name = "blackscholes";
      prog = B.Blackscholes.program B.Blackscholes.Exact;
      func = B.Blackscholes.price_func;
      args = B.Blackscholes.price_args w 0;
      threshold = 1e-9;
    }
  in
  let hpccg =
    let d = if small then 5 else 7 in
    let w = B.Hpccg.generate ~nx:d ~ny:d ~nz:d ~max_iter:10 () in
    {
      name = "hpccg";
      prog = B.Hpccg.program;
      func = B.Hpccg.func_name;
      args = B.Hpccg.args w;
      threshold = 1e-10;
    }
  in
  base @ [ blackscholes; hpccg ]

type phase = { pname : string; pcount : int; ptotal_s : float }

type pool_util = {
  pu_tasks : int;
  pu_workers : (int * int) list;  (** (worker slot, tasks), slot order *)
  pu_queue_wait_s : float;
  pu_busy_s : float;
}

type row = {
  w : workload;
  executions : int;
  demoted : int;
  seq_s : float;  (** jobs = 1, cold compile cache *)
  par_s : float;  (** jobs = par_jobs, cold compile cache *)
  par_jobs : int;
  warm_s : float;  (** jobs = 1 again, warm compile cache *)
  cache : Compile_cache.stats;  (** stats of the warm run *)
  identical : bool;  (** all runs' outcomes bit-identical *)
  phases : phase list;  (** per-span-name totals of the traced run *)
  pool : pool_util;  (** pool metrics of the traced run *)
  instrumented_ops : int;  (** spans + events + metric updates observed *)
}

(* Aggregate a traced run's spans into a per-phase (span name) breakdown,
   heaviest first. Events carry no duration and are skipped. *)
let phases_of spans =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Trace.span) ->
      match s.Trace.kind with
      | Trace.Event -> ()
      | Trace.Span ->
          let d =
            Int64.to_float (Int64.sub s.Trace.end_ns s.Trace.start_ns) *. 1e-9
          in
          let c, t =
            Option.value ~default:(0, 0.) (Hashtbl.find_opt tbl s.Trace.name)
          in
          Hashtbl.replace tbl s.Trace.name (c + 1, t +. d))
    spans;
  Hashtbl.fold
    (fun pname (pcount, ptotal_s) acc -> { pname; pcount; ptotal_s } :: acc)
    tbl []
  |> List.sort (fun a b -> compare b.ptotal_s a.ptotal_s)

(* Pool utilization from the metrics registry (DESIGN.md §9 names). *)
let pool_util_of_snapshot snap =
  let tasks = ref 0
  and workers = ref []
  and qw = ref 0.
  and busy = ref 0. in
  List.iter
    (fun (name, v) ->
      match (name, v) with
      | "pool.tasks", Metrics.Counter n -> tasks := n
      | "pool.queue_wait_seconds", Metrics.Histogram { sum; _ } -> qw := sum
      | "pool.busy_seconds", Metrics.Histogram { sum; _ } -> busy := sum
      | name, Metrics.Counter n -> (
          match String.split_on_char '.' name with
          | [ "pool"; "worker"; w; "tasks" ] -> (
              match int_of_string_opt w with
              | Some w -> workers := (w, n) :: !workers
              | None -> ())
          | _ -> ())
      | _ -> ())
    snap;
  {
    pu_tasks = !tasks;
    pu_workers = List.sort compare !workers;
    pu_queue_wait_s = !qw;
    pu_busy_s = !busy;
  }

let same_outcome (a : Search.outcome) (b : Search.outcome) =
  a.Search.demoted = b.Search.demoted
  && a.Search.executions = b.Search.executions
  && a.Search.modelled_error = b.Search.modelled_error
  && a.Search.evaluation.Tuner.actual_error
     = b.Search.evaluation.Tuner.actual_error
  && a.Search.evaluation.Tuner.modelled_speedup
     = b.Search.evaluation.Tuner.modelled_speedup

let measure ~jobs w =
  (* Pinned to `Measured: this block tracks the measured search's wall
     clock across PRs, so its execution counts must stay comparable —
     the profile-guided strategies get their own model_guided block. *)
  let tune j =
    Search.tune ~jobs:j ~strategy:`Measured ~prog:w.prog ~func:w.func
      ~args:w.args ~threshold:w.threshold ()
  in
  Gc.compact ();
  Compile_cache.clear ();
  let seq, seq_s = Meter.time (fun () -> tune 1) in
  Gc.compact ();
  Compile_cache.clear ();
  let par, par_s = Meter.time (fun () -> tune jobs) in
  (* Third run without clearing: every configuration the search visits
     was compiled by the run above, so this isolates the compile cache's
     contribution (and its stats prove the hits happened). *)
  Gc.compact ();
  Compile_cache.reset_stats ();
  let warm, warm_s = Meter.time (fun () -> tune 1) in
  let cache = Compile_cache.stats () in
  (* Fourth run, fully instrumented (warm cache, same jobs as the
     parallel run): its spans become the per-phase breakdown, the pool
     histograms become the utilization block, and its outcome must stay
     bit-identical — instrumentation is observation only. Its wall clock
     is deliberately not compared against the uninstrumented runs. *)
  Gc.compact ();
  Metrics.reset ();
  Metrics.set_enabled true;
  Trace.reset ();
  Trace.set_enabled true;
  let traced = tune jobs in
  Trace.set_enabled false;
  Metrics.set_enabled false;
  let spans = Trace.spans () in
  Trace.reset ();
  let pool = pool_util_of_snapshot (Metrics.snapshot ()) in
  (* Every span/event is one disabled-path branch when tracing is off;
     every pool task updates two counters and two histograms; every
     cache lookup bumps one counter. This op count feeds the overhead
     guard below. *)
  let instrumented_ops =
    List.length spans
    + (4 * pool.pu_tasks)
    + cache.Compile_cache.hits + cache.Compile_cache.misses
  in
  Metrics.reset ();
  {
    w;
    executions = seq.Search.executions;
    demoted = List.length seq.Search.demoted;
    seq_s;
    par_s;
    par_jobs = jobs;
    warm_s;
    cache;
    identical =
      same_outcome seq par && same_outcome seq warm
      && same_outcome seq traced;
    phases = phases_of spans;
    pool;
    instrumented_ops;
  }

(* ------------------------------------------------------------------ *)
(* Batched multi-configuration execution (Ir.Batch): same search, same
   outcome, K candidate configs per lane sweep. The scalar and batched
   searches both run cold-cache, jobs = 1, so the measured ratio
   isolates the lane batching itself. *)

type batch_row = {
  bw : workload;
  b_lanes : int;
  b_executions : int;  (** program-runs-equivalent (identical both ways) *)
  b_batched_runs : int;  (** lane sweeps of the batched search *)
  b_divergences : int;  (** lanes that fell back to scalar re-runs *)
  b_scalar_s : float;
  b_batched_s : float;
  b_identical : bool;  (** batched outcome bit-identical to scalar *)
}

let batch_divergence_c = Metrics.counter "batch.divergence_total"

let measure_batch ?(lanes = Cheffp_ir.Batch.default_lanes) w =
  (* Pinned to `Measured for the same comparability reason as [measure]. *)
  let tune ?batch () =
    Search.tune ~jobs:1 ~strategy:`Measured ?batch ~prog:w.prog ~func:w.func
      ~args:w.args ~threshold:w.threshold ()
  in
  Gc.compact ();
  Compile_cache.clear ();
  let scalar, b_scalar_s = Meter.time (fun () -> tune ()) in
  Gc.compact ();
  Compile_cache.clear ();
  let d0 = Metrics.counter_value batch_divergence_c in
  let batched, b_batched_s = Meter.time (fun () -> tune ~batch:lanes ()) in
  {
    bw = w;
    b_lanes = lanes;
    b_executions = scalar.Search.executions;
    b_batched_runs = batched.Search.batched_runs;
    b_divergences = Metrics.counter_value batch_divergence_c - d0;
    b_scalar_s;
    b_batched_s;
    b_identical = same_outcome scalar batched;
  }

let batch_speedup r =
  if r.b_batched_s > 0. then r.b_scalar_s /. r.b_batched_s else 1.

let batch_divergence_rate r =
  if r.b_executions > 0 then
    float_of_int r.b_divergences /. float_of_int r.b_executions
  else 0.

let print_batch_rows rows =
  Table.print
    ~header:
      [
        "workload"; "runs"; "sweeps"; "diverged"; "scalar"; "batched";
        "batch x"; "identical";
      ]
    (List.map
       (fun r ->
         [
           r.bw.name;
           string_of_int r.b_executions;
           string_of_int r.b_batched_runs;
           string_of_int r.b_divergences;
           Printf.sprintf "%.3f s" r.b_scalar_s;
           Printf.sprintf "%.3f s" r.b_batched_s;
           Printf.sprintf "%.2fx" (batch_speedup r);
           string_of_bool r.b_identical;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Profile-guided search (Core.Profile): one gradient-augmented run
   scores every candidate configuration, so `Hybrid skips the
   executions measured search wastes on speculation past a failure
   (chosen set bit-identical, strictly fewer executions) and `Modelled
   picks a configuration with zero candidate executions. All runs are
   jobs=1, so the comparison is core-count independent. *)

type model_row = {
  mw : workload;
  m_lanes : int;
  m_prune_margin : float;
  m_measured_execs : int;
  m_measured_batched_runs : int;
  m_measured_s : float;
  m_hybrid_execs : int;
  m_hybrid_batched_runs : int;
  m_hybrid_avoided : int;
  m_hybrid_s : float;
  m_modelled_execs : int;
  m_modelled_avoided : int;
  m_modelled_augmented_runs : int;  (** profile builds of the cold run *)
  m_modelled_confirmations : int;  (** Tuner.evaluate: reference + config *)
  m_modelled_s : float;
  m_modelled_warm_s : float;  (** re-run with the profile cached *)
  m_profile_cache_hits : int;  (** hits of the warm re-run *)
  m_modelled_config : Cheffp_precision.Config.t;
  m_modelled_demoted : int;
  m_demoted_identical : bool;  (** hybrid chose the same set as measured *)
}

let profile_builds_c = Metrics.counter "profile.builds"
let profile_cache_hits_c = Metrics.counter "profile.cache_hits"

let measure_model ?(lanes = Cheffp_ir.Batch.default_lanes)
    ?(prune_margin = 64.) w =
  let tune ~strategy ?batch () =
    Search.tune ~jobs:1 ~strategy ~prune_margin ?batch ~prog:w.prog
      ~func:w.func ~args:w.args ~threshold:w.threshold ()
  in
  Gc.compact ();
  Compile_cache.clear ();
  let measured, m_measured_s =
    Meter.time (fun () -> tune ~strategy:`Measured ~batch:lanes ())
  in
  Gc.compact ();
  Compile_cache.clear ();
  let hybrid, m_hybrid_s =
    Meter.time (fun () -> tune ~strategy:`Hybrid ~batch:lanes ())
  in
  Gc.compact ();
  Compile_cache.clear ();
  let b0 = Metrics.counter_value profile_builds_c in
  let modelled, m_modelled_s =
    Meter.time (fun () -> tune ~strategy:`Modelled ())
  in
  let m_modelled_augmented_runs = Metrics.counter_value profile_builds_c - b0 in
  (* Same inputs again, cache kept: the augmented run is served from the
     shared LRU, proving a whole tuning session pays for one profile. *)
  let h0 = Metrics.counter_value profile_cache_hits_c in
  let _, m_modelled_warm_s =
    Meter.time (fun () -> tune ~strategy:`Modelled ())
  in
  let m_profile_cache_hits =
    Metrics.counter_value profile_cache_hits_c - h0
  in
  {
    mw = w;
    m_lanes = lanes;
    m_prune_margin = prune_margin;
    m_measured_execs = measured.Search.executions;
    m_measured_batched_runs = measured.Search.batched_runs;
    m_measured_s;
    m_hybrid_execs = hybrid.Search.executions;
    m_hybrid_batched_runs = hybrid.Search.batched_runs;
    m_hybrid_avoided = hybrid.Search.runs_avoided;
    m_hybrid_s;
    m_modelled_execs = modelled.Search.executions;
    m_modelled_avoided = modelled.Search.runs_avoided;
    m_modelled_augmented_runs;
    m_modelled_confirmations = 2;
    m_modelled_s;
    m_modelled_warm_s;
    m_profile_cache_hits;
    m_modelled_config = modelled.Search.evaluation.Tuner.config;
    m_modelled_demoted = List.length modelled.Search.demoted;
    m_demoted_identical = hybrid.Search.demoted = measured.Search.demoted;
  }

let print_model_rows rows =
  Table.print
    ~header:
      [
        "workload"; "measured"; "hybrid"; "avoided"; "modelled"; "aug";
        "meas s"; "hyb s"; "model s"; "identical";
      ]
    (List.map
       (fun r ->
         [
           r.mw.name;
           string_of_int r.m_measured_execs;
           string_of_int r.m_hybrid_execs;
           string_of_int r.m_hybrid_avoided;
           string_of_int r.m_modelled_execs;
           string_of_int r.m_modelled_augmented_runs;
           Printf.sprintf "%.3f s" r.m_measured_s;
           Printf.sprintf "%.3f s" r.m_hybrid_s;
           Printf.sprintf "%.3f s" r.m_modelled_s;
           string_of_bool r.m_demoted_identical;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Rigorous range bounds (DESIGN.md §17). Two claims, separately gated:

   - Soundness: on every FPCore corpus kernel whose analysis certifies a
     bound, the all-charged-vars-at-f32 bound must dominate the measured
     demotion error |y_f32config − y_f64| at inputs sampled from the
     kernel's [:pre] box (the same quantity the shadow oracle reports as
     [demotion_error]). UNBOUNDED and not-certified verdicts claim
     nothing and are vacuously sound — what is gated is zero UNSOUND.

   - Pruning: `Hybrid search with the rigorous [prune_bound] must pick
     the bit-identical demoted set at no more executions on every paper
     workload, and strictly fewer on the ones where bounds certify. *)

module Range = Cheffp_range.Range
module Rbox = Cheffp_range.Box

type range_sound_row = {
  g_name : string;
  g_verdict : string;  (** BOUNDED | UNBOUNDED | NOT_CERTIFIED *)
  g_bound : float;  (** certified f32 bound; [nan] when nothing is claimed *)
  g_sampled_max : float;  (** max measured demotion error over the points *)
  g_points : int;
  g_sound : bool;  (** bound >= sampled max; vacuously true without a claim *)
}

let range_soundness ?(samples = 24) () =
  let module Import = Cheffp_fpcore.Import in
  let module Interp = Cheffp_ir.Interp in
  let module Config = Cheffp_precision.Config in
  let module Sampling = Cheffp_core.Sampling in
  let entries = B.Corpus.load () in
  List.map
    (fun (e : B.Corpus.entry) ->
      let func = e.core.Import.name in
      let f = Cheffp_ir.Ast.func_exn e.prog func in
      let args = e.core.Import.default_args in
      let ranges = e.core.Import.ranges in
      let box = Rbox.of_args ~ranges ~func:f ~args () in
      let a = Range.analyze ~prog:e.prog ~func ~box () in
      let vacuous verdict =
        {
          g_name = func;
          g_verdict = verdict;
          g_bound = Float.nan;
          g_sampled_max = Float.nan;
          g_points = 0;
          g_sound = true;
        }
      in
      match a.Range.verdict with
      | Range.Unbounded _ -> vacuous "UNBOUNDED"
      | Range.Bounded -> (
          let vars = Range.charged_vars a in
          match Range.score a ~target:Cheffp_precision.Fp.F32 vars with
          | None -> vacuous "NOT_CERTIFIED"
          | Some bound ->
              let config =
                Config.demote_all Config.double vars Cheffp_precision.Fp.F32
              in
              let plan = Sampling.plan ~ranges ~func:f ~args () in
              let inputs = Sampling.draw_many plan ~seed:42L samples in
              let demotion_error input =
                let y config =
                  Interp.run_float ~config ~prog:e.prog ~func input
                in
                Float.abs (y config -. y Config.double)
              in
              let worst =
                Array.fold_left
                  (fun acc input -> Float.max acc (demotion_error input))
                  (demotion_error args) inputs
              in
              {
                g_name = func;
                g_verdict = "BOUNDED";
                g_bound = bound;
                g_sampled_max = worst;
                g_points = Array.length inputs + 1;
                g_sound = worst <= bound;
              }))
    entries

let range_unsound rows = List.filter (fun r -> not r.g_sound) rows

let range_certified rows =
  List.length (List.filter (fun r -> r.g_verdict = "BOUNDED") rows)

let print_range_soundness rows =
  Printf.printf
    "range soundness: %d corpus kernel(s), %d certified bounds, %d \
     UNBOUNDED/not-certified (vacuous), %d UNSOUND\n"
    (List.length rows) (range_certified rows)
    (List.length rows - range_certified rows)
    (List.length (range_unsound rows));
  List.iter
    (fun r ->
      if not r.g_sound then
        Printf.printf "  UNSOUND %s: bound %.6e < sampled max %.6e\n" r.g_name
          r.g_bound r.g_sampled_max)
    rows;
  let tight =
    List.filter_map
      (fun r ->
        if r.g_verdict = "BOUNDED" && r.g_sampled_max > 0. then
          Some (r.g_bound /. r.g_sampled_max)
        else None)
      rows
  in
  match tight with
  | [] -> ()
  | _ ->
      let sorted = List.sort compare tight in
      Printf.printf
        "bound / sampled-max overestimation over %d kernels: median %.1fx\n"
        (List.length sorted)
        (List.nth sorted (List.length sorted / 2))

(* Pruning is measured in two threshold regimes per workload, against
   the same `Hybrid baseline each time:

   - tight: the workload's paper threshold, sitting below the
     all-demoted error so the search takes its expensive probe + grow
     path. Rigorous bounds rarely certify here (they over-approximate
     the measured error by ~an order of magnitude); what is gated is
     that they never change the chosen set and never cost executions.

   - loose: the threshold is the certified all-candidates bound itself
     — the "can everything demote?" fast-path question the analysis can
     answer outright. Here the search must accept without executing a
     single candidate (strictly fewer executions, same set). Workloads
     whose analysis is UNBOUNDED fall back to twice the measured
     all-demoted error, where certification cannot fire and both runs
     must match exactly. *)
type range_prune_row = {
  pw : workload;
  p_verdict : string;
  p_analyze_ms : float;  (** one-off cost of the rigorous analysis *)
  p_baseline_execs : int;  (** tight: `Hybrid, no prune_bound *)
  p_pruned_execs : int;  (** tight: `Hybrid + rigorous prune_bound *)
  p_pruned : int;
  p_identical : bool;
  p_loose_threshold : float;
  p_loose_baseline_execs : int;
  p_loose_pruned_execs : int;
  p_loose_pruned : int;
  p_loose_identical : bool;
}

let measure_range_prune w =
  let module Config = Cheffp_precision.Config in
  let module Interp = Cheffp_ir.Interp in
  let tune ~threshold ?prune_bound () =
    Gc.compact ();
    Compile_cache.clear ();
    Search.tune ~jobs:1 ?prune_bound ~prog:w.prog ~func:w.func ~args:w.args
      ~threshold ()
  in
  let f = Cheffp_ir.Ast.func_exn w.prog w.func in
  (* Point-mode search measures at the base args, so the certificate
     only needs the degenerate point box — the tightest the Taylor
     forms get. *)
  let box = Rbox.point_of_args ~func:f ~args:w.args () in
  let a, analyze_s =
    Meter.time (fun () -> Range.analyze ~prog:w.prog ~func:w.func ~box ())
  in
  let prune_bound = Range.pruner a ~target:Cheffp_precision.Fp.F32 in
  let candidates = Tuner.float_variables f in
  let loose_threshold =
    match prune_bound candidates with
    | Some b -> b
    | None ->
        (* Nothing certifies: park the loose regime at twice the
           measured all-demoted error, where both runs must agree. *)
        let copy =
          List.map (function
            | Interp.Afarr a -> Interp.Afarr (Array.copy a)
            | Interp.Aiarr a -> Interp.Aiarr (Array.copy a)
            | x -> x)
        in
        let y config =
          Interp.run_float ~config ~prog:w.prog ~func:w.func (copy w.args)
        in
        let demotion =
          Float.abs
            (y (Config.demote_all Config.double candidates
                  Cheffp_precision.Fp.F32)
            -. y Config.double)
        in
        2. *. Float.max demotion 1e-300
  in
  let baseline = tune ~threshold:w.threshold () in
  let pruned = tune ~threshold:w.threshold ~prune_bound () in
  let loose_baseline = tune ~threshold:loose_threshold () in
  let loose_pruned = tune ~threshold:loose_threshold ~prune_bound () in
  {
    pw = w;
    p_verdict = Range.verdict_to_string a.Range.verdict;
    p_analyze_ms = analyze_s *. 1000.;
    p_baseline_execs = baseline.Search.executions;
    p_pruned_execs = pruned.Search.executions;
    p_pruned = pruned.Search.pruned;
    p_identical = pruned.Search.demoted = baseline.Search.demoted;
    p_loose_threshold = loose_threshold;
    p_loose_baseline_execs = loose_baseline.Search.executions;
    p_loose_pruned_execs = loose_pruned.Search.executions;
    p_loose_pruned = loose_pruned.Search.pruned;
    p_loose_identical = loose_pruned.Search.demoted = loose_baseline.Search.demoted;
  }

let print_range_prune_rows rows =
  Table.print
    ~header:
      [
        "workload"; "tight"; "+bounds"; "loose"; "+bounds"; "pruned";
        "verdict"; "analyze"; "identical";
      ]
    (List.map
       (fun r ->
         [
           r.pw.name;
           string_of_int r.p_baseline_execs;
           string_of_int r.p_pruned_execs;
           string_of_int r.p_loose_baseline_execs;
           string_of_int r.p_loose_pruned_execs;
           string_of_int (r.p_pruned + r.p_loose_pruned);
           r.p_verdict;
           Printf.sprintf "%.1f ms" r.p_analyze_ms;
           string_of_bool (r.p_identical && r.p_loose_identical);
         ])
       rows)

type range_block = {
  rg_sound : range_sound_row list;
  rg_prune : range_prune_row list;
}

let range_bench ?(samples = 24) ~workloads () =
  let rg_sound = range_soundness ~samples () in
  print_range_soundness rg_sound;
  let rg_prune = List.map measure_range_prune workloads in
  print_range_prune_rows rg_prune;
  { rg_sound; rg_prune }

(* Overhead guard: the disabled instrumentation path must be paid-for by
   design, not by measurement luck. We microbenchmark the disabled
   [with_span] (one atomic load + branch + call), assert it allocates
   nothing, and bound each workload's worst-case instrumentation cost as
   [observed ops x per-op cost] relative to its uninstrumented wall
   clock. The op count comes from the traced run, so it is the real
   number of branch points the workload crosses, not a guess. *)

let noop () = ()

type probe = { span_ns : float; alloc_words : float }

let probe_disabled_path () =
  assert (not (Trace.enabled ()));
  let iters = 2_000_000 in
  for _ = 1 to 10_000 do
    Trace.with_span "overhead-probe" noop
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    Trace.with_span "overhead-probe" noop
  done;
  let alloc_words = Gc.minor_words () -. w0 in
  let _, s =
    Meter.time (fun () ->
        for _ = 1 to iters do
          Trace.with_span "overhead-probe" noop
        done)
  in
  { span_ns = s *. 1e9 /. float_of_int iters; alloc_words }

let overhead_pct probe r =
  if r.seq_s <= 0. then 0.
  else
    float_of_int r.instrumented_ops *. probe.span_ns *. 1e-9 /. r.seq_s
    *. 100.

let overhead_guard ?(limit_pct = 2.0) rows =
  let probe = probe_disabled_path () in
  Printf.printf
    "overhead guard: disabled with_span = %.1f ns/call, %.0f minor words \
     allocated over 2M calls\n"
    probe.span_ns probe.alloc_words;
  let ok_alloc = probe.alloc_words = 0. in
  if not ok_alloc then
    Printf.printf "overhead guard: FAIL — disabled path allocates\n";
  let ok_cost =
    List.for_all
      (fun r ->
        let pct = overhead_pct probe r in
        Printf.printf
          "overhead guard: %-12s %6d ops x %.1f ns = %.4f%% of %.3f s \
           (limit %.1f%%)%s\n"
          r.w.name r.instrumented_ops probe.span_ns pct r.seq_s limit_pct
          (if pct < limit_pct then "" else "  FAIL");
        pct < limit_pct)
      rows
  in
  ok_alloc && ok_cost

(* ------------------------------------------------------------------ *)
(* Estimate-soundness block: every built-in benchmark is checked
   against the double-double shadow oracle at its EXPERIMENTS.md-style
   configuration (tuner-chosen for the Table I trio, the Fig. 9
   split set for HPCCG, uniform F32 for per-option Black-Scholes).
   BENCH_search.json carries the coverage rate and the median
   tightness so estimate-quality regressions show up in the perf
   trajectory, not only in unit tests. *)

module Oracle = Cheffp_shadow.Oracle
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp

type soundness_row = { sbench : string; verdict : Oracle.verdict }

let soundness_rows ?(small = false) () =
  let tuned ~prog ~func ~args ~threshold =
    (Tuner.tune ~prog ~func ~args ~threshold ()).Tuner.evaluation.Tuner.config
  in
  let check sbench ~prog ~func ~args config =
    {
      sbench;
      verdict = Oracle.check_estimate ~prog ~func ~config args;
    }
  in
  let n = if small then 2_000 else 10_000 in
  let arc =
    let args = B.Arclength.args ~n in
    let prog = B.Arclength.program and func = B.Arclength.func_name in
    check "arclength" ~prog ~func ~args
      (tuned ~prog ~func ~args ~threshold:1e-5)
  in
  let simpsons =
    let args = B.Simpsons.args ~a:0. ~b:Float.pi ~n in
    let prog = B.Simpsons.program and func = B.Simpsons.func_name in
    check "simpsons" ~prog ~func ~args
      (tuned ~prog ~func ~args ~threshold:1e-6)
  in
  let kmeans =
    let w = B.Kmeans.generate ~npoints:(if small then 300 else 1_000) () in
    let args = B.Kmeans.args w in
    let prog = B.Kmeans.program and func = B.Kmeans.func_name in
    check "kmeans" ~prog ~func ~args (tuned ~prog ~func ~args ~threshold:1e-6)
  in
  let blackscholes =
    let w = B.Blackscholes.generate ~n:4 () in
    check "blackscholes"
      ~prog:(B.Blackscholes.program B.Blackscholes.Exact)
      ~func:B.Blackscholes.price_func
      ~args:(B.Blackscholes.price_args w 0)
      (Config.uniform Fp.F32)
  in
  let hpccg =
    let d = if small then 6 else 8 in
    let w = B.Hpccg.generate ~nx:d ~ny:d ~nz:d ~max_iter:10 () in
    check "hpccg" ~prog:B.Hpccg.program ~func:B.Hpccg.func_name
      ~args:(B.Hpccg.args w)
      (Config.demote_all Config.double
         [ "r"; "p"; "ap"; "sum"; "alpha"; "beta"; "rtrans"; "oldrtrans" ]
         Fp.F32)
  in
  [ arc; simpsons; kmeans; blackscholes; hpccg ]

let soundness_coverage rows =
  let sound = List.filter (fun r -> r.verdict.Oracle.sound) rows in
  float_of_int (List.length sound) /. float_of_int (max 1 (List.length rows))

let soundness_median_tightness rows =
  match
    List.filter_map (fun r -> r.verdict.Oracle.tightness) rows
    |> Array.of_list
  with
  | [||] -> Float.nan
  | a -> Cheffp_util.Stats.median a

let print_soundness rows =
  print_endline
    "estimate soundness vs double-double shadow oracle (extended mode, \
     margin 1):";
  Table.print
    ~header:[ "benchmark"; "measured"; "bound"; "tightness"; "sound" ]
    (List.map
       (fun r ->
         let v = r.verdict in
         [
           r.sbench;
           Printf.sprintf "%.3e" v.Oracle.measured_error;
           Printf.sprintf "%.3e" v.Oracle.bound;
           (match v.Oracle.tightness with
           | Some t -> Printf.sprintf "%.2fx" t
           | None -> "-");
           string_of_bool v.Oracle.sound;
         ])
       rows);
  Printf.printf "coverage %.0f%%, median tightness %.2fx\n"
    (100. *. soundness_coverage rows)
    (soundness_median_tightness rows)

(* ------------------------------------------------------------------ *)
(* Distribution block (DESIGN.md §16): Monte-Carlo input sweeps at SoA
   lane speed. Per workload: samples/sec of N sampled evaluations run
   (a) scalar one-by-one, (b) as SoA input sweeps on one domain,
   (c) as sweep chunks fanned over the pool — all three bit-identical
   per sample — plus the quantile-targeted vs single-point search
   comparison with a shadow-oracle soundness check at sampled points. *)

module Sampling = Cheffp_core.Sampling
module Quantile = Cheffp_core.Quantile

type dist_row = {
  dw : workload;
  d_samples : int;
  d_sampled_vars : int;  (** plan slots actually drawn (0 = all-int args) *)
  d_scalar_s : float;  (** per-sample scalar Compile.run loop, warm cache *)
  d_sweep_s : float;  (** Batch.run_inputs_many, jobs = 1 *)
  d_pool_s : float;  (** Batch.run_inputs_many, jobs = d_pool_jobs *)
  d_pool_jobs : int;
  d_divergences : int;  (** batch.divergence_total delta over the sweeps *)
  d_identical : bool;  (** every sweep's per-sample results = scalar *)
  d_point_demoted : string list;  (** single-point Search.tune set *)
  d_quantile_demoted : string list;  (** quantile-targeted set *)
  d_point_p99 : float;  (** sampled p99 error of the point-tuned config *)
  d_quantile_p99 : float;  (** sampled p99 error of the quantile-tuned config *)
  d_sound : bool;  (** oracle SOUND for the quantile config at sampled points *)
}

let dist_rate n s = if s > 0. then float_of_int n /. s else 0.
let dist_scalar_rate r = dist_rate r.d_samples r.d_scalar_s
let dist_sweep_rate r = dist_rate r.d_samples r.d_sweep_s
let dist_pool_rate r = dist_rate r.d_samples r.d_pool_s

let deep_copy_args args =
  List.map
    (function
      | Cheffp_ir.Interp.Afarr a -> Cheffp_ir.Interp.Afarr (Array.copy a)
      | Cheffp_ir.Interp.Aiarr a -> Cheffp_ir.Interp.Aiarr (Array.copy a)
      | x -> x)
    args

(* Microsecond kernels (per-option Black-Scholes) make a single pass
   over the samples too short to time against scheduler noise: repeat
   the run until the window reaches [min_elapsed] and report the mean.
   The first pass's result is returned for the identity checks. *)
let time_stable ?(min_elapsed = 0.05) f =
  let r, t = Meter.time f in
  if t >= min_elapsed then (r, t)
  else begin
    let reps =
      max 1 (int_of_float (Float.ceil (min_elapsed /. Float.max 1e-6 t)))
    in
    let _, total =
      Meter.time (fun () ->
          for _ = 1 to reps do
            ignore (f ())
          done)
    in
    (r, total /. float_of_int reps)
  end

let measure_dist ?(samples = 192) ?(lanes = Cheffp_ir.Batch.default_sweep_lanes)
    ?(jobs = 4) ?(quantile = 0.99) w =
  let module Batch = Cheffp_ir.Batch in
  let module Compile = Cheffp_ir.Compile in
  let func_decl = Cheffp_ir.Ast.func_exn w.prog w.func in
  let plan = Sampling.plan ~func:func_decl ~args:w.args () in
  let inputs = Sampling.draw_many plan ~seed:42L samples in
  (* All three throughput axes evaluate the same demoted configuration —
     the axis under test is one config x K sampled inputs. *)
  let config = Config.uniform Fp.F32 in
  Compile_cache.clear ();
  (* Warm both artifacts so the timed loops measure execution, not
     compilation (mirrors the warm-cache row of the search block). *)
  let scalar_c = Compile.compile ~config ~prog:w.prog ~func:w.func () in
  let run_scalar () =
    Array.map
      (fun args -> Compile.run_float scalar_c (deep_copy_args args))
      inputs
  in
  let run_sweep jobs () =
    Sampling.sweep ~jobs ~lanes ~prog:w.prog ~func:w.func ~config inputs
  in
  (* Identity and divergence accounting on single untimed passes (the
     timed loops below repeat, which would inflate the counter). *)
  let scalar_res = run_scalar () in
  let d0 = Metrics.counter_value batch_divergence_c in
  let sweep_res = run_sweep 1 () in
  let pool_res = run_sweep jobs () in
  let d_divergences = Metrics.counter_value batch_divergence_c - d0 in
  let d_identical = sweep_res = scalar_res && pool_res = scalar_res in
  Gc.compact ();
  let _, d_scalar_s = time_stable run_scalar in
  Gc.compact ();
  let _, d_sweep_s = time_stable (run_sweep 1) in
  Gc.compact ();
  let _, d_pool_s = time_stable (run_sweep jobs) in
  (* Quantile-targeted vs single-point tuning: same threshold, but the
     quantile search judges every candidate by the p-quantile of its
     measured error over the sampled inputs instead of the midpoint. *)
  let tune ?sampling () =
    Search.tune ~jobs:1 ~strategy:`Measured ~batch:lanes ?sampling
      ~prog:w.prog ~func:w.func ~args:w.args ~threshold:w.threshold ()
  in
  let point = tune () in
  let quantile_o = tune ~sampling:{ Search.inputs; quantile } () in
  let p99_of config =
    let s, _ =
      Sampling.measured_summary ~lanes ~prog:w.prog ~func:w.func ~config
        inputs
    in
    s.Quantile.p99
  in
  let d_point_p99 = p99_of point.Search.evaluation.Tuner.config in
  let quantile_config = quantile_o.Search.evaluation.Tuner.config in
  let d_quantile_p99 = p99_of quantile_config in
  (* Oracle gate at sampled points: the quantile-chosen configuration
     must stay SOUND against the double-double shadow at the inputs the
     statistics were computed from, not just at the midpoint. Margin 2
     for the same first-order headroom as the model-soundness gates. *)
  let d_sound =
    Array.for_all
      (fun args ->
        (Oracle.check_estimate ~margin:2.0 ~prog:w.prog ~func:w.func
           ~config:quantile_config (deep_copy_args args))
          .Oracle.sound)
      (Array.sub inputs 0 (min 3 (Array.length inputs)))
  in
  {
    dw = w;
    d_samples = samples;
    d_sampled_vars = List.length (Sampling.sampled_vars plan);
    d_scalar_s;
    d_sweep_s;
    d_pool_s;
    d_pool_jobs = jobs;
    d_divergences;
    d_identical;
    d_point_demoted = point.Search.demoted;
    d_quantile_demoted = quantile_o.Search.demoted;
    d_point_p99;
    d_quantile_p99;
    d_sound;
  }

let print_dist_rows rows =
  Table.print
    ~header:
      [
        "workload"; "sampled"; "scalar/s"; "sweep/s"; "pool/s"; "sweep x";
        "diverged"; "identical"; "sets differ"; "sound";
      ]
    (List.map
       (fun r ->
         [
           r.dw.name;
           string_of_int r.d_sampled_vars;
           Printf.sprintf "%.0f" (dist_scalar_rate r);
           Printf.sprintf "%.0f" (dist_sweep_rate r);
           Printf.sprintf "%.0f (j=%d)" (dist_pool_rate r) r.d_pool_jobs;
           Printf.sprintf "%.2fx" (dist_sweep_rate r /. dist_scalar_rate r);
           string_of_int r.d_divergences;
           string_of_bool r.d_identical;
           string_of_bool (r.d_point_demoted <> r.d_quantile_demoted);
           string_of_bool r.d_sound;
         ])
       rows);
  List.iter
    (fun r ->
      if r.d_point_demoted <> r.d_quantile_demoted then
        Printf.printf
          "%s: point tuning demotes {%s} (sampled p99 %.3e); p99-targeted \
           tuning demotes {%s} (sampled p99 %.3e)\n"
          r.dw.name
          (String.concat ", " r.d_point_demoted)
          r.d_point_p99
          (String.concat ", " r.d_quantile_demoted)
          r.d_quantile_p99)
    rows

(* Server block: the paper workloads driven through a live in-process
   [cheffp serve] daemon as search requests over loopback TCP. One cold
   round pays the cross-request compile misses, a warm sequential
   replay and a warm concurrent round (one connection + thread per
   workload, same request count) then measure throughput and
   client-observed latency, and every response's outcome is checked
   field-for-field against a direct in-process [Search.tune] on the
   same rendered source — the bench-side version of the serve-smoke
   bit-identity gate. *)

module Server = Cheffp_server.Server
module Client = Cheffp_server.Client
module Sjson = Cheffp_server.Json
module Shadow = Cheffp_shadow.Shadow
module Stats = Cheffp_util.Stats

type server_row = {
  vw : workload;
  v_identical : bool;  (** every response == direct Search.tune outcome *)
  v_cold_ms : float;  (** first-request latency, cold compile cache *)
  v_cold_hits : int;
  v_cold_misses : int;
}

type server_block = {
  sv_rows : server_row list;
  sv_workers : int;
  sv_rounds : int;
  sv_requests : int;  (** warm requests per mode (rounds * workloads) *)
  sv_seq_s : float;  (** warm sequential replay wall clock *)
  sv_conc_s : float;  (** warm concurrent wall clock, same request count *)
  sv_p50_ms : float;  (** over all warm client-observed latencies *)
  sv_p99_ms : float;
  sv_warm_hit_rate : float;  (** compile-cache hits/lookups across warm *)
}

let sv_seq_rps b =
  if b.sv_seq_s > 0. then float_of_int b.sv_requests /. b.sv_seq_s else 0.

let sv_conc_rps b =
  if b.sv_conc_s > 0. then float_of_int b.sv_requests /. b.sv_conc_s else 0.

(* CLI argument syntax (arrays as v1:v2:...); %.17g round-trips every
   finite float, which is what keeps the wire detour bit-exact. *)
let arg_string = function
  | Cheffp_ir.Interp.Aint i -> string_of_int i
  | Cheffp_ir.Interp.Aflt x -> Printf.sprintf "%.17g" x
  | Cheffp_ir.Interp.Afarr a ->
      String.concat ":"
        (List.map (Printf.sprintf "%.17g") (Array.to_list a))
  | Cheffp_ir.Interp.Aiarr a ->
      String.concat ":" (List.map string_of_int (Array.to_list a))

(* The direct baseline must see exactly what the server parsed: the
   same rendered source and arguments round-tripped through the same
   string syntax. *)
let reparse_arg = function
  | Cheffp_ir.Interp.Aint i -> Cheffp_ir.Interp.Aint i
  | Cheffp_ir.Interp.Aflt x ->
      Cheffp_ir.Interp.Aflt (float_of_string (Printf.sprintf "%.17g" x))
  | Cheffp_ir.Interp.Afarr a ->
      Cheffp_ir.Interp.Afarr
        (Array.map (fun x -> float_of_string (Printf.sprintf "%.17g" x)) a)
  | Cheffp_ir.Interp.Aiarr a -> Cheffp_ir.Interp.Aiarr (Array.copy a)

let copy_args args =
  List.map
    (function
      | Cheffp_ir.Interp.Afarr a -> Cheffp_ir.Interp.Afarr (Array.copy a)
      | Cheffp_ir.Interp.Aiarr a -> Cheffp_ir.Interp.Aiarr (Array.copy a)
      | x -> x)
    args

let search_request ~id w =
  Client.request ~id ~cmd:"search"
    [
      ("program", Sjson.Str (Cheffp_ir.Pp.program_to_string w.prog));
      ("func", Sjson.Str w.func);
      ( "args",
        Sjson.List (List.map (fun a -> Sjson.Str (arg_string a)) w.args) );
      ("threshold", Sjson.Num w.threshold);
      ("tenant", Sjson.Str "bench");
    ]

(* The outcome fields [same_outcome] compares, as they cross the wire. *)
type wire_outcome = {
  wo_demoted : string list;
  wo_executions : int;
  wo_modelled_error : float;
  wo_actual_error : float;
  wo_modelled_speedup : float;
}

let expect_ok resp =
  (match Sjson.to_bool_opt (Sjson.member "ok" resp) with
  | Some true -> ()
  | _ -> failwith ("server error response: " ^ Sjson.to_string resp));
  let c = Sjson.member "cache" resp in
  let geti n =
    Option.value ~default:0 (Sjson.to_int_opt (Sjson.member n c))
  in
  (geti "hits", geti "misses")

let wire_outcome_of resp =
  let r = Sjson.member "result" resp in
  let num n =
    Option.value ~default:Float.nan (Sjson.to_float_opt (Sjson.member n r))
  in
  {
    wo_demoted = Sjson.string_list (Sjson.member "demoted" r);
    wo_executions =
      Option.value ~default:(-1) (Sjson.to_int_opt (Sjson.member "executions" r));
    wo_modelled_error = num "modelled_error";
    wo_actual_error = num "actual_error";
    wo_modelled_speedup = num "modelled_speedup";
  }

let feq a b = Int64.bits_of_float a = Int64.bits_of_float b

let same_wire a b =
  a.wo_demoted = b.wo_demoted
  && a.wo_executions = b.wo_executions
  && feq a.wo_modelled_error b.wo_modelled_error
  && feq a.wo_actual_error b.wo_actual_error
  && feq a.wo_modelled_speedup b.wo_modelled_speedup

(* Run the request's exact code path in-process: handler defaults
   (target f32, hybrid, prune_margin 64, default lanes, jobs 1, shadow
   Source-mode measure) on the reparsed source — see
   [Cheffp_server.Server.handle_search]. *)
let direct_outcome w =
  let builtins = Cheffp_ir.Builtins.create () in
  Cheffp_fastapprox.Fastapprox.register_builtins builtins;
  let prog =
    Cheffp_ir.Parser.parse_program (Cheffp_ir.Pp.program_to_string w.prog)
  in
  Cheffp_ir.Typecheck.check_program ~builtins prog;
  let args = List.map reparse_arg w.args in
  let measure config =
    Shadow.measured_error
      (Shadow.run ~builtins ~config ~mode:Config.Source ~prog ~func:w.func
         (copy_args args))
  in
  let o =
    Search.tune ~target:Fp.F32 ~builtins ~jobs:1 ~strategy:`Hybrid
      ~prune_margin:64. ~batch:Cheffp_ir.Batch.default_lanes ~measure ~prog
      ~func:w.func ~args ~threshold:w.threshold ()
  in
  {
    wo_demoted = o.Search.demoted;
    wo_executions = o.Search.executions;
    wo_modelled_error = o.Search.modelled_error;
    wo_actual_error = o.Search.evaluation.Tuner.actual_error;
    wo_modelled_speedup = o.Search.evaluation.Tuner.modelled_speedup;
  }

let server_bench ?(workers = 2) ?(rounds = 3) ?(workloads = batch_workloads ())
    () =
  Gc.compact ();
  Compile_cache.clear ();
  Compile_cache.reset_stats ();
  let srv = Server.create ~workers (Server.Tcp 0) in
  let port = Option.get (Server.port srv) in
  let accept = Thread.create Server.run srv in
  let connect () = Client.retry_connect (fun () -> Client.connect_tcp port) in
  let next_id = Atomic.make 1 in
  let rpc conn w =
    let id = Atomic.fetch_and_add next_id 1 in
    let resp, s =
      Meter.time (fun () -> Client.rpc conn (search_request ~id w))
    in
    let hits, misses = expect_ok resp in
    (wire_outcome_of resp, hits, misses, s *. 1e3)
  in
  let conn0 = connect () in
  (* Cold round: every later request's compiles were cached here. *)
  let cold = List.map (fun w -> (w, rpc conn0 w)) workloads in
  let latencies = ref [] in
  let warm_hits = ref 0 and warm_misses = ref 0 in
  let outcomes : (string, wire_outcome list) Hashtbl.t = Hashtbl.create 8 in
  let record w (o, h, m, ms) =
    latencies := ms :: !latencies;
    warm_hits := !warm_hits + h;
    warm_misses := !warm_misses + m;
    Hashtbl.replace outcomes w.name
      (o :: Option.value ~default:[] (Hashtbl.find_opt outcomes w.name))
  in
  let (), sv_seq_s =
    Meter.time (fun () ->
        for _ = 1 to rounds do
          List.iter (fun w -> record w (rpc conn0 w)) workloads
        done)
  in
  let n = List.length workloads in
  let results = Array.make n [] in
  let (), sv_conc_s =
    Meter.time (fun () ->
        let ths =
          List.mapi
            (fun i w ->
              Thread.create
                (fun () ->
                  let conn = connect () in
                  let acc = ref [] in
                  for _ = 1 to rounds do
                    acc := rpc conn w :: !acc
                  done;
                  Client.close conn;
                  results.(i) <- !acc)
                ())
            workloads
        in
        List.iter Thread.join ths)
  in
  List.iteri
    (fun i w -> List.iter (fun r -> record w r) results.(i))
    workloads;
  ignore
    (Client.rpc conn0
       (Client.request ~id:(Atomic.fetch_and_add next_id 1) ~cmd:"shutdown" []));
  Client.close conn0;
  Thread.join accept;
  (* Direct baselines last, so they cannot pre-warm the cold round. *)
  let sv_rows =
    List.map
      (fun (w, (o_cold, ch, cm, cold_ms)) ->
        let base = direct_outcome w in
        let all =
          o_cold :: Option.value ~default:[] (Hashtbl.find_opt outcomes w.name)
        in
        {
          vw = w;
          v_identical = List.for_all (same_wire base) all;
          v_cold_ms = cold_ms;
          v_cold_hits = ch;
          v_cold_misses = cm;
        })
      cold
  in
  let lat = Array.of_list !latencies in
  let lookups = !warm_hits + !warm_misses in
  {
    sv_rows;
    sv_workers = workers;
    sv_rounds = rounds;
    sv_requests = rounds * n;
    sv_seq_s;
    sv_conc_s;
    sv_p50_ms = Stats.percentile lat 50.;
    sv_p99_ms = Stats.percentile lat 99.;
    sv_warm_hit_rate =
      (if lookups > 0 then float_of_int !warm_hits /. float_of_int lookups
       else 0.);
  }

let print_server b =
  Printf.printf
    "cheffp serve (%d workers): %d warm search requests per mode over \
     loopback TCP\n"
    b.sv_workers b.sv_requests;
  Table.print
    ~header:[ "workload"; "cold ms"; "cold hits/misses"; "identical" ]
    (List.map
       (fun r ->
         [
           r.vw.name;
           Printf.sprintf "%.1f" r.v_cold_ms;
           Printf.sprintf "%d/%d" r.v_cold_hits r.v_cold_misses;
           string_of_bool r.v_identical;
         ])
       b.sv_rows);
  Printf.printf
    "sequential replay %.3f s (%.1f req/s), concurrent %.3f s (%.1f \
     req/s), p50 %.2f ms, p99 %.2f ms, warm cache hit rate %.3f\n"
    b.sv_seq_s (sv_seq_rps b) b.sv_conc_s (sv_conc_rps b) b.sv_p50_ms
    b.sv_p99_ms b.sv_warm_hit_rate;
  if Domain.recommended_domain_count () < 2 then
    Printf.printf
      "(single-core host: concurrent requests time-slice one CPU, so the \
       concurrent >= sequential throughput expectation is skipped)\n"

(* ------------------------------------------------------------------ *)
(* Continuous telemetry (DESIGN.md §14): what the always-on layer costs.
   Two daemons run the same warm analyze workload — one with telemetry
   (span recording, tail retention, window ticker), one with
   --no-telemetry semantics — and the block records the wall-clock
   delta, best-of-rounds per mode to damp scheduler noise. Analyze
   requests are the unit: heavy enough to be a real request, light
   enough that per-request telemetry work would register. The block
   also prices a scrape: mean client-observed latency of stats /
   Prometheus metrics / traces requests issued mid-traffic (a second
   connection keeps analyze requests flowing while the first scrapes,
   the acceptance setting: a live daemon answering without restart). *)

type telemetry_block = {
  tl_requests : int;  (** timed analyze requests per round *)
  tl_rounds : int;  (** rounds per mode; best round is kept *)
  tl_enabled_s : float;  (** best-of-rounds wall clock, telemetry on *)
  tl_disabled_s : float;  (** same, telemetry off *)
  tl_stats_us : float;  (** mean stats scrape latency *)
  tl_prom_us : float;  (** mean Prometheus metrics scrape latency *)
  tl_traces_us : float;  (** mean traces scrape latency *)
  tl_prom_bytes : int;  (** one Prometheus exposition payload *)
  tl_scrapes_ok : bool;  (** every mid-traffic scrape answered sanely *)
}

let telemetry_delta_pct b =
  if b.tl_disabled_s > 0. then
    (b.tl_enabled_s -. b.tl_disabled_s) /. b.tl_disabled_s *. 100.
  else 0.

let analyze_request ~id w =
  Client.request ~id ~cmd:"analyze"
    [
      ("program", Sjson.Str (Cheffp_ir.Pp.program_to_string w.prog));
      ("func", Sjson.Str w.func);
      ( "args",
        Sjson.List (List.map (fun a -> Sjson.Str (arg_string a)) w.args) );
      ("tenant", Sjson.Str "bench");
    ]

let telemetry_bench ?(workers = 2) ?(rounds = 3) ?(passes = 4)
    ?(workloads = batch_workloads ~small:true ()) () =
  Gc.compact ();
  let next_id = Atomic.make 1 in
  let fresh_id () = Atomic.fetch_and_add next_id 1 in
  let run_mode ~telemetry =
    Compile_cache.clear ();
    Compile_cache.reset_stats ();
    (* A traced earlier bench stage may have left span recording on;
       the disabled mode must measure the real --no-telemetry path. *)
    if not telemetry then Cheffp_obs.Trace.set_enabled false;
    let srv =
      Server.create ~workers ~telemetry ~window_epochs:4 ~window_epoch_s:0.5
        (Server.Tcp 0)
    in
    let port = Option.get (Server.port srv) in
    let accept = Thread.create Server.run srv in
    let connect () = Client.retry_connect (fun () -> Client.connect_tcp port) in
    let conn = connect () in
    let do_req c w =
      ignore (expect_ok (Client.rpc c (analyze_request ~id:(fresh_id ()) w)))
    in
    (* Cold pass caches every compile; the timed rounds are warm. *)
    List.iter (do_req conn) workloads;
    let best = ref infinity in
    for _ = 1 to rounds do
      let (), s =
        Meter.time (fun () ->
            for _ = 1 to passes do
              List.iter (do_req conn) workloads
            done)
      in
      if s < !best then best := s
    done;
    let scrapes =
      if not telemetry then None
      else begin
        (* Scrape while a second connection keeps traffic flowing. *)
        let stop = Atomic.make false in
        let bg =
          Thread.create
            (fun () ->
              let c = connect () in
              while not (Atomic.get stop) do
                do_req c (List.hd workloads)
              done;
              Client.close c)
            ()
        in
        let ok = ref true in
        let scrape cmd fields check =
          let resp, s =
            Meter.time (fun () ->
                Client.rpc conn (Client.request ~id:(fresh_id ()) ~cmd fields))
          in
          (match Sjson.to_bool_opt (Sjson.member "ok" resp) with
          | Some true -> if not (check resp) then ok := false
          | _ -> ok := false);
          s *. 1e6
        in
        let mean f =
          let n = 5 in
          let t = ref 0. in
          for _ = 1 to n do
            t := !t +. f ()
          done;
          !t /. float_of_int n
        in
        let stats_us =
          mean (fun () ->
              scrape "stats" [] (fun r ->
                  let res = Sjson.member "result" r in
                  Sjson.to_bool_opt (Sjson.member "telemetry" res) = Some true
                  && Option.value ~default:(-1.)
                       (Sjson.to_float_opt (Sjson.member "window_s" res))
                     >= 0.))
        in
        let prom_bytes = ref 0 in
        let prom_us =
          mean (fun () ->
              scrape "metrics"
                [ ("format", Sjson.Str "prometheus") ]
                (fun r ->
                  match
                    Sjson.to_string_opt
                      (Sjson.member "metrics" (Sjson.member "result" r))
                  with
                  | Some body ->
                      prom_bytes := String.length body;
                      String.length body > 0
                  | None -> false))
        in
        let traces_us =
          mean (fun () ->
              scrape "traces" [] (fun r ->
                  match
                    Sjson.member "slowest" (Sjson.member "result" r)
                  with
                  | Sjson.List _ -> true
                  | _ -> false))
        in
        Atomic.set stop true;
        Thread.join bg;
        Some (stats_us, prom_us, traces_us, !prom_bytes, !ok)
      end
    in
    ignore
      (Client.rpc conn (Client.request ~id:(fresh_id ()) ~cmd:"shutdown" []));
    Client.close conn;
    Thread.join accept;
    (!best, scrapes)
  in
  let disabled_s, _ = run_mode ~telemetry:false in
  let enabled_s, scrapes = run_mode ~telemetry:true in
  (* The telemetry-on daemon turns span recording on; later stages (the
     disabled-path probe in [write_json]) need it off again. *)
  Cheffp_obs.Trace.set_enabled false;
  let stats_us, prom_us, traces_us, prom_bytes, scrapes_ok =
    match scrapes with
    | Some s -> s
    | None -> (0., 0., 0., 0, false)
  in
  {
    tl_requests = passes * List.length workloads;
    tl_rounds = rounds;
    tl_enabled_s = enabled_s;
    tl_disabled_s = disabled_s;
    tl_stats_us = stats_us;
    tl_prom_us = prom_us;
    tl_traces_us = traces_us;
    tl_prom_bytes = prom_bytes;
    tl_scrapes_ok = scrapes_ok;
  }

let print_telemetry b =
  Printf.printf
    "telemetry: %d warm analyze requests/round (best of %d): enabled %.3f \
     s, disabled %.3f s (delta %+.2f%%)\n"
    b.tl_requests b.tl_rounds b.tl_enabled_s b.tl_disabled_s
    (telemetry_delta_pct b);
  Printf.printf
    "scrape cost mid-traffic: stats %.0f us, prometheus %.0f us (%d \
     bytes), traces %.0f us; scrapes sane: %b\n"
    b.tl_stats_us b.tl_prom_us b.tl_prom_bytes b.tl_traces_us b.tl_scrapes_ok;
  if Domain.recommended_domain_count () < 2 then
    Printf.printf
      "(single-core host: the window ticker and the measured requests \
       time-slice one CPU, so the <= 5%% enabled-vs-disabled gate is \
       skipped — re-run on a multi-core host for the delta)\n"

(* FPCore interop over the vendored FPBench corpus (DESIGN.md §15):
   times one parse+typecheck pass over examples/fpbench/*.fpcore, one
   CHEF-FP estimate per kernel at its :pre-derived sample point, and
   the export -> reimport round trip, and gates that every round trip
   reproduces the identical AST and a bit-identical estimate. *)
type fpcore_bench = {
  fp_kernels : int;
  fp_import_s : float;
  fp_analyze_s : float;
  fp_roundtrip_s : float;
  fp_roundtrip_exact : bool;
}

let fpcore_bench () =
  let module E = Cheffp_core.Estimate in
  let module Import = Cheffp_fpcore.Import in
  let module Export = Cheffp_fpcore.Export in
  let entries, fp_import_s = Meter.time (fun () -> B.Corpus.load ()) in
  let analyze prog func args =
    let est = E.estimate_error ~prog ~func () in
    (E.run est args).E.total_error
  in
  let totals, fp_analyze_s =
    Meter.time (fun () ->
        List.map
          (fun (e : B.Corpus.entry) ->
            analyze e.prog e.core.Import.name e.core.Import.default_args)
          entries)
  in
  let fp_roundtrip_exact, fp_roundtrip_s =
    Meter.time (fun () ->
        List.for_all2
          (fun (e : B.Corpus.entry) total ->
            let func = e.core.Import.name in
            let text = Export.func_to_fpcore ~prog:e.prog ~func () in
            match Import.parse_string ~file:"<roundtrip>" text with
            | [ c ] ->
                let prog' : Cheffp_ir.Ast.program =
                  { funcs = [ c.Import.func ] }
                in
                c.Import.func = Cheffp_ir.Ast.func_exn e.prog func
                && Float.equal
                     (analyze prog' func e.core.Import.default_args)
                     total
            | _ -> false)
          entries totals)
  in
  {
    fp_kernels = List.length entries;
    fp_import_s;
    fp_analyze_s;
    fp_roundtrip_s;
    fp_roundtrip_exact;
  }

let print_fpcore b =
  Printf.printf
    "fpcore: %d kernels imported in %.3f s, analyzed in %.3f s, \
     export->reimport round trip in %.3f s, exact %b\n"
    b.fp_kernels b.fp_import_s b.fp_analyze_s b.fp_roundtrip_s
    b.fp_roundtrip_exact

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~path ~soundness ~batch ~model ~dist ~server ~telemetry ~fpcore
    ~range rows =
  let probe = probe_disabled_path () in
  let oc = open_out path in
  let pf fmt = Printf.fprintf oc fmt in
  pf "{\n";
  pf "  \"bench\": \"search\",\n";
  pf "  \"description\": \"Search.tune wall clock: sequential vs domain-parallel vs warm compile cache\",\n";
  pf "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ());
  pf "  \"default_jobs\": %d,\n" (Pool.default_jobs ());
  pf "  \"disabled_span_ns_per_call\": %.2f,\n" probe.span_ns;
  pf "  \"disabled_span_alloc_words\": %.0f,\n" probe.alloc_words;
  (if Domain.recommended_domain_count () < 2 then
     pf
       "  \"note\": \"single-core host: domains time-slice one CPU, so \
        parallel_speedup < 1 here; re-run on a multi-core host for the \
        parallel numbers\",\n");
  pf "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      pf "    {\n";
      pf "      \"name\": \"%s\",\n" (json_escape r.w.name);
      pf "      \"threshold\": %.17g,\n" r.w.threshold;
      pf "      \"executions\": %d,\n" r.executions;
      pf "      \"demoted\": %d,\n" r.demoted;
      pf "      \"seconds_jobs1\": %.6f,\n" r.seq_s;
      pf "      \"jobs\": %d,\n" r.par_jobs;
      pf "      \"seconds_jobsN\": %.6f,\n" r.par_s;
      pf "      \"parallel_speedup\": %.3f,\n"
        (if r.par_s > 0. then r.seq_s /. r.par_s else 1.);
      pf "      \"seconds_warm_cache\": %.6f,\n" r.warm_s;
      pf "      \"warm_cache_speedup\": %.3f,\n"
        (if r.warm_s > 0. then r.seq_s /. r.warm_s else 1.);
      pf "      \"cache_hits\": %d,\n" r.cache.Compile_cache.hits;
      pf "      \"cache_misses\": %d,\n" r.cache.Compile_cache.misses;
      pf "      \"cache_evictions\": %d,\n" r.cache.Compile_cache.evictions;
      pf "      \"outcomes_identical\": %b,\n" r.identical;
      pf "      \"phases\": {\n";
      List.iteri
        (fun j p ->
          pf "        \"%s\": {\"count\": %d, \"seconds\": %.6f}%s\n"
            (json_escape p.pname) p.pcount p.ptotal_s
            (if j < List.length r.phases - 1 then "," else ""))
        r.phases;
      pf "      },\n";
      pf "      \"pool\": {\n";
      pf "        \"tasks\": %d,\n" r.pool.pu_tasks;
      pf "        \"worker_tasks\": {%s},\n"
        (String.concat ", "
           (List.map
              (fun (w, n) -> Printf.sprintf "\"%d\": %d" w n)
              r.pool.pu_workers));
      pf "        \"queue_wait_seconds\": %.6f,\n" r.pool.pu_queue_wait_s;
      pf "        \"busy_seconds\": %.6f\n" r.pool.pu_busy_s;
      pf "      },\n";
      pf "      \"instrumented_ops\": %d,\n" r.instrumented_ops;
      pf "      \"disabled_overhead_pct\": %.4f\n" (overhead_pct probe r);
      pf "    }%s\n" (if i < List.length rows - 1 then "," else ""))
    rows;
  pf "  ],\n";
  pf "  \"batch\": {\n";
  pf "    \"description\": \"Search.tune scalar vs K-lane batched candidate evaluation (Ir.Batch), cold cache, jobs=1\",\n";
  pf "    \"lanes\": %d,\n"
    (match batch with r :: _ -> r.b_lanes | [] -> 0);
  pf "    \"workloads\": [\n";
  List.iteri
    (fun i r ->
      pf "      {\"name\": \"%s\", \"threshold\": %.17g, \"executions\": %d, \
          \"batched_runs\": %d, \"divergences\": %d, \"divergence_rate\": \
          %.4f, \"seconds_scalar\": %.6f, \"seconds_batched\": %.6f, \
          \"batch_speedup\": %.3f, \"outcomes_identical\": %b}%s\n"
        (json_escape r.bw.name) r.bw.threshold r.b_executions r.b_batched_runs
        r.b_divergences (batch_divergence_rate r) r.b_scalar_s r.b_batched_s
        (batch_speedup r) r.b_identical
        (if i < List.length batch - 1 then "," else ""))
    batch;
  pf "    ]\n";
  pf "  },\n";
  pf "  \"model_guided\": {\n";
  pf "    \"description\": \"Profile-guided search (Core.Profile): one \
      gradient-augmented run scores every candidate; hybrid skips the \
      executions measured search wastes on speculation past a failure \
      (chosen set bit-identical), modelled picks with zero candidate \
      executions\",\n";
  pf "    \"jobs\": 1,\n";
  pf "    \"note\": \"all strategies run jobs=1, so the comparison is \
      core-count independent (see host_cores above for the parallel \
      blocks)\",\n";
  pf "    \"lanes\": %d,\n" (match model with r :: _ -> r.m_lanes | [] -> 0);
  pf "    \"prune_margin\": %g,\n"
    (match model with r :: _ -> r.m_prune_margin | [] -> 0.);
  pf "    \"workloads\": [\n";
  List.iteri
    (fun i r ->
      pf "      {\n";
      pf "        \"name\": \"%s\",\n" (json_escape r.mw.name);
      pf "        \"threshold\": %.17g,\n" r.mw.threshold;
      pf "        \"measured\": {\"strategy\": \"measured\", \
          \"executions\": %d, \"batched_runs\": %d, \"seconds\": %.6f},\n"
        r.m_measured_execs r.m_measured_batched_runs r.m_measured_s;
      pf "        \"hybrid\": {\"strategy\": \"hybrid\", \"executions\": %d, \
          \"batched_runs\": %d, \"runs_avoided\": %d, \"seconds\": %.6f},\n"
        r.m_hybrid_execs r.m_hybrid_batched_runs r.m_hybrid_avoided
        r.m_hybrid_s;
      pf "        \"modelled\": {\"strategy\": \"modelled\", \
          \"executions\": %d, \"runs_avoided\": %d, \"augmented_runs\": %d, \
          \"confirmation_runs\": %d, \"demoted\": %d, \"seconds\": %.6f, \
          \"seconds_warm_profile\": %.6f, \"profile_cache_hits\": %d},\n"
        r.m_modelled_execs r.m_modelled_avoided r.m_modelled_augmented_runs
        r.m_modelled_confirmations r.m_modelled_demoted r.m_modelled_s
        r.m_modelled_warm_s r.m_profile_cache_hits;
      pf "        \"executions_saved\": %d,\n"
        (r.m_measured_execs - r.m_hybrid_execs);
      pf "        \"demoted_identical\": %b\n" r.m_demoted_identical;
      pf "      }%s\n" (if i < List.length model - 1 then "," else ""))
    model;
  pf "    ]\n";
  pf "  },\n";
  pf "  \"distribution\": {\n";
  pf "    \"description\": \"Monte-Carlo input sweeps (DESIGN.md S16): \
      samples/sec of N sampled evaluations run scalar one-by-one vs as \
      SoA input sweeps (jobs=1) vs sweep chunks over the pool, all \
      bit-identical per sample; plus p99-targeted vs single-point \
      Search.tune demotion sets with an oracle soundness check at \
      sampled points\",\n";
  pf "    \"samples\": %d,\n" (match dist with r :: _ -> r.d_samples | [] -> 0);
  pf "    \"lanes\": %d,\n" Cheffp_ir.Batch.default_sweep_lanes;
  pf "    \"pool_jobs\": %d,\n"
    (match dist with r :: _ -> r.d_pool_jobs | [] -> 0);
  pf "    \"target_quantile\": 0.99,\n";
  pf "    \"seed\": 42,\n";
  (if Domain.recommended_domain_count () < 2 then
     pf
       "    \"note\": \"single-core host: sweep chunks time-slice one CPU, \
        so the pool axis measures scheduling overhead, not scaling (see \
        host_cores above) — the sweep-vs-scalar lane speedup is still \
        meaningful\",\n");
  pf "    \"workloads\": [\n";
  List.iteri
    (fun i r ->
      pf "      {\n";
      pf "        \"name\": \"%s\",\n" (json_escape r.dw.name);
      pf "        \"sampled_vars\": %d,\n" r.d_sampled_vars;
      pf "        \"samples_per_sec_scalar\": %.1f,\n" (dist_scalar_rate r);
      pf "        \"samples_per_sec_sweep\": %.1f,\n" (dist_sweep_rate r);
      pf "        \"samples_per_sec_sweep_pool\": %.1f,\n" (dist_pool_rate r);
      pf "        \"sweep_speedup\": %.3f,\n"
        (if r.d_scalar_s > 0. then dist_sweep_rate r /. dist_scalar_rate r
         else 1.);
      pf "        \"pool_speedup\": %.3f,\n"
        (if r.d_sweep_s > 0. then dist_pool_rate r /. dist_sweep_rate r
         else 1.);
      pf "        \"divergences\": %d,\n" r.d_divergences;
      pf "        \"lanes_identical_to_scalar\": %b,\n" r.d_identical;
      pf "        \"point_demoted\": [%s],\n"
        (String.concat ", "
           (List.map
              (fun v -> Printf.sprintf "\"%s\"" (json_escape v))
              r.d_point_demoted));
      pf "        \"quantile_demoted\": [%s],\n"
        (String.concat ", "
           (List.map
              (fun v -> Printf.sprintf "\"%s\"" (json_escape v))
              r.d_quantile_demoted));
      pf "        \"sets_differ\": %b,\n"
        (r.d_point_demoted <> r.d_quantile_demoted);
      pf "        \"point_config_sampled_p99\": %.6e,\n" r.d_point_p99;
      pf "        \"quantile_config_sampled_p99\": %.6e,\n" r.d_quantile_p99;
      pf "        \"oracle_sound_at_sampled_points\": %b\n" r.d_sound;
      pf "      }%s\n" (if i < List.length dist - 1 then "," else ""))
    dist;
  pf "    ]\n";
  pf "  },\n";
  pf "  \"server\": {\n";
  pf "    \"description\": \"cheffp serve daemon: paper workloads as \
      search requests over loopback TCP against one shared worker pool \
      and sharded compile cache; cold round, warm sequential replay, \
      warm concurrent round (same request count)\",\n";
  pf "    \"workers\": %d,\n" server.sv_workers;
  pf "    \"rounds\": %d,\n" server.sv_rounds;
  pf "    \"requests_per_mode\": %d,\n" server.sv_requests;
  pf "    \"seconds_sequential_warm\": %.6f,\n" server.sv_seq_s;
  pf "    \"seconds_concurrent_warm\": %.6f,\n" server.sv_conc_s;
  pf "    \"requests_per_second_sequential\": %.3f,\n" (sv_seq_rps server);
  pf "    \"requests_per_second_concurrent\": %.3f,\n" (sv_conc_rps server);
  pf "    \"concurrent_over_sequential\": %.3f,\n"
    (if server.sv_seq_s > 0. then server.sv_seq_s /. server.sv_conc_s else 1.);
  pf "    \"p50_ms\": %.3f,\n" server.sv_p50_ms;
  pf "    \"p99_ms\": %.3f,\n" server.sv_p99_ms;
  pf "    \"warm_cache_hit_rate\": %.4f,\n" server.sv_warm_hit_rate;
  (if Domain.recommended_domain_count () < 2 then
     pf
       "    \"note\": \"single-core host: concurrent requests time-slice \
        one CPU, so concurrent_over_sequential measures scheduling \
        overhead, not scaling (see host_cores above) — re-run on a \
        multi-core host for the throughput numbers\",\n");
  pf "    \"workloads\": [\n";
  List.iteri
    (fun i r ->
      pf
        "      {\"name\": \"%s\", \"cold_ms\": %.3f, \"cold_cache_hits\": \
         %d, \"cold_cache_misses\": %d, \"outcomes_identical_to_oneshot\": \
         %b}%s\n"
        (json_escape r.vw.name) r.v_cold_ms r.v_cold_hits r.v_cold_misses
        r.v_identical
        (if i < List.length server.sv_rows - 1 then "," else ""))
    server.sv_rows;
  pf "    ]\n";
  pf "  },\n";
  pf "  \"telemetry\": {\n";
  pf "    \"description\": \"continuous telemetry cost (DESIGN.md \
      S14): same warm analyze workload through a telemetry-on and a \
      --no-telemetry daemon (best-of-rounds wall clock), plus the \
      client-observed cost of stats / Prometheus / traces scrapes \
      issued while requests flow on a second connection\",\n";
  pf "    \"requests_per_round\": %d,\n" telemetry.tl_requests;
  pf "    \"rounds_per_mode\": %d,\n" telemetry.tl_rounds;
  pf "    \"seconds_enabled\": %.6f,\n" telemetry.tl_enabled_s;
  pf "    \"seconds_disabled\": %.6f,\n" telemetry.tl_disabled_s;
  pf "    \"enabled_over_disabled_delta_pct\": %.3f,\n"
    (telemetry_delta_pct telemetry);
  pf "    \"delta_budget_pct\": 5.0,\n";
  pf "    \"stats_scrape_us\": %.1f,\n" telemetry.tl_stats_us;
  pf "    \"prometheus_scrape_us\": %.1f,\n" telemetry.tl_prom_us;
  pf "    \"prometheus_bytes\": %d,\n" telemetry.tl_prom_bytes;
  pf "    \"traces_scrape_us\": %.1f,\n" telemetry.tl_traces_us;
  pf "    \"scrapes_ok_mid_traffic\": %b%s\n" telemetry.tl_scrapes_ok
    (if Domain.recommended_domain_count () < 2 then "," else "");
  (if Domain.recommended_domain_count () < 2 then
     pf
       "    \"note\": \"single-core host: the ticker thread and the \
        measured requests time-slice one CPU, so the delta measures \
        scheduling noise, not telemetry cost — the <= 5%% budget only \
        applies on multi-core hosts\"\n");
  pf "  },\n";
  pf "  \"fpcore\": {\n";
  pf "    \"description\": \"FPBench interop (DESIGN.md S15): parse + \
      typecheck the vendored examples/fpbench corpus, one estimate per \
      kernel at its :pre-derived sample point, and the exact export -> \
      reimport round trip\",\n";
  pf "    \"kernels\": %d,\n" fpcore.fp_kernels;
  pf "    \"seconds_import\": %.6f,\n" fpcore.fp_import_s;
  pf "    \"seconds_analyze\": %.6f,\n" fpcore.fp_analyze_s;
  pf "    \"seconds_roundtrip\": %.6f,\n" fpcore.fp_roundtrip_s;
  pf "    \"roundtrip_exact\": %b\n" fpcore.fp_roundtrip_exact;
  pf "  },\n";
  pf "  \"range\": {\n";
  pf "    \"description\": \"rigorous interval/Taylor-form bounds \
      (DESIGN.md S17): certified all-charged-vars-at-f32 demotion-error \
      bounds vs sampled |y_f32 - y_f64| over each FPCore kernel's :pre \
      box (zero UNSOUND gated), and Hybrid search with the rigorous \
      prune_bound vs the plain hybrid baseline (bit-identical sets, \
      executions saved)\",\n";
  pf "    \"target\": \"f32\",\n";
  pf "    \"corpus_kernels\": %d,\n" (List.length range.rg_sound);
  pf "    \"certified_bounds\": %d,\n" (range_certified range.rg_sound);
  pf "    \"unsound\": %d,\n" (List.length (range_unsound range.rg_sound));
  pf "    \"soundness\": [\n";
  List.iteri
    (fun i r ->
      pf
        "      {\"name\": \"%s\", \"verdict\": \"%s\", \"bound\": %s, \
         \"sampled_max\": %s, \"points\": %d, \"sound\": %b}%s\n"
        (json_escape r.g_name) r.g_verdict
        (if Float.is_finite r.g_bound then Printf.sprintf "%.6e" r.g_bound
         else "null")
        (if Float.is_finite r.g_sampled_max then
           Printf.sprintf "%.6e" r.g_sampled_max
         else "null")
        r.g_points r.g_sound
        (if i < List.length range.rg_sound - 1 then "," else ""))
    range.rg_sound;
  pf "    ],\n";
  pf "    \"pruning\": [\n";
  List.iteri
    (fun i r ->
      pf
        "      {\"name\": \"%s\", \"verdict\": \"%s\", \"analyze_ms\": \
         %.3f,\n\
        \       \"tight\": {\"threshold\": %.17g, \"hybrid_executions\": %d, \
         \"pruned_executions\": %d, \"pruned\": %d, \"executions_saved\": \
         %d, \"demoted_identical\": %b},\n\
        \       \"loose\": {\"threshold\": %.17g, \"hybrid_executions\": %d, \
         \"pruned_executions\": %d, \"pruned\": %d, \"executions_saved\": \
         %d, \"demoted_identical\": %b}}%s\n"
        (json_escape r.pw.name) (json_escape r.p_verdict) r.p_analyze_ms
        r.pw.threshold r.p_baseline_execs r.p_pruned_execs r.p_pruned
        (r.p_baseline_execs - r.p_pruned_execs)
        r.p_identical r.p_loose_threshold r.p_loose_baseline_execs
        r.p_loose_pruned_execs r.p_loose_pruned
        (r.p_loose_baseline_execs - r.p_loose_pruned_execs)
        r.p_loose_identical
        (if i < List.length range.rg_prune - 1 then "," else ""))
    range.rg_prune;
  pf "    ]\n";
  pf "  },\n";
  pf "  \"soundness\": {\n";
  pf "    \"mode\": \"extended\",\n";
  pf "    \"margin\": 1.0,\n";
  pf "    \"coverage\": %.3f,\n" (soundness_coverage soundness);
  pf "    \"median_tightness\": %.3f,\n" (soundness_median_tightness soundness);
  pf "    \"benchmarks\": [\n";
  List.iteri
    (fun i r ->
      let v = r.verdict in
      pf
        "      {\"name\": \"%s\", \"demoted\": %d, \"measured_error\": %.6e, \
         \"modelled_bound\": %.6e, \"tightness\": %s, \"sound\": %b}%s\n"
        (json_escape r.sbench)
        (List.length v.Oracle.demoted)
        v.Oracle.measured_error v.Oracle.bound
        (match v.Oracle.tightness with
        | Some t -> Printf.sprintf "%.3f" t
        | None -> "null")
        v.Oracle.sound
        (if i < List.length soundness - 1 then "," else ""))
    soundness;
  pf "    ]\n";
  pf "  }\n";
  pf "}\n";
  close_out oc

let print_rows rows =
  Table.print
    ~header:
      [
        "workload"; "runs"; "demoted"; "-j 1"; "-j N"; "par x"; "warm cache";
        "cache x"; "hits"; "identical";
      ]
    (List.map
       (fun r ->
         [
           r.w.name;
           string_of_int r.executions;
           string_of_int r.demoted;
           Printf.sprintf "%.3f s" r.seq_s;
           Printf.sprintf "%.3f s (j=%d)" r.par_s r.par_jobs;
           Printf.sprintf "%.2fx" (r.seq_s /. r.par_s);
           Printf.sprintf "%.3f s" r.warm_s;
           Printf.sprintf "%.2fx" (r.seq_s /. r.warm_s);
           string_of_int r.cache.Compile_cache.hits;
           string_of_bool r.identical;
         ])
       rows)

let search_bench ?(jobs = 4) ?(out = "BENCH_search.json")
    ?(workloads = default_workloads ()) ?(small_soundness = false) () =
  Printf.printf
    "\n== Search.tune hot path: sequential vs %d domains vs warm compile cache ==\n"
    jobs;
  let host_cores = Domain.recommended_domain_count () in
  (* The parallel_speedup >= 1 expectation only applies on real
     multi-core hosts: a single exposed CPU time-slices the domains, so
     the number measures scheduling overhead, not scaling (the JSON
     keeps the field and the note either way). *)
  if host_cores >= 2 then
    Printf.printf "(host reports %d core(s); parallel speedup expected >= 1)\n"
      host_cores
  else
    Printf.printf
      "(host reports 1 core: parallel_speedup expectation skipped — domains \
       time-slice one CPU)\n";
  let rows = List.map (measure ~jobs) workloads in
  print_rows rows;
  List.iter
    (fun r ->
      Printf.printf "%s phases (traced run, heaviest first):\n" r.w.name;
      List.iteri
        (fun i p ->
          if i < 8 then
            Printf.printf "  %-22s x%-4d %8.3f ms\n" p.pname p.pcount
              (p.ptotal_s *. 1e3))
        r.phases;
      Printf.printf
        "  pool: %d task(s) over worker(s) {%s}, queue-wait %.3f ms, busy \
         %.3f ms\n"
        r.pool.pu_tasks
        (String.concat ", "
           (List.map
              (fun (w, n) -> Printf.sprintf "%d:%d" w n)
              r.pool.pu_workers))
        (r.pool.pu_queue_wait_s *. 1e3)
        (r.pool.pu_busy_s *. 1e3))
    rows;
  Printf.printf
    "\n== Batched candidate evaluation: scalar vs %d-lane sweeps ==\n"
    Cheffp_ir.Batch.default_lanes;
  let batch =
    List.map measure_batch (batch_workloads ~small:small_soundness ())
  in
  print_batch_rows batch;
  Printf.printf
    "\n== Profile-guided search: measured vs hybrid vs modelled (jobs=1) ==\n";
  let model =
    List.map measure_model (batch_workloads ~small:small_soundness ())
  in
  print_model_rows model;
  Printf.printf
    "\n== Input-sweep sampling: scalar vs SoA sweep vs sweep + pool ==\n";
  let dist =
    List.map
      (measure_dist ~samples:(if small_soundness then 128 else 256) ~jobs)
      (batch_workloads ~small:small_soundness ())
  in
  print_dist_rows dist;
  let soundness = soundness_rows ~small:small_soundness () in
  print_soundness soundness;
  Printf.printf
    "\n== cheffp serve: concurrent requests vs sequential replay ==\n";
  let server =
    server_bench ~workloads:(batch_workloads ~small:small_soundness ()) ()
  in
  print_server server;
  Printf.printf
    "\n== Continuous telemetry: enabled vs disabled daemon, scrape cost ==\n";
  let telemetry =
    telemetry_bench ~workloads:(batch_workloads ~small:small_soundness ()) ()
  in
  print_telemetry telemetry;
  Printf.printf "\n== FPCore corpus: import, analyze, export round trip ==\n";
  let fpcore = fpcore_bench () in
  print_fpcore fpcore;
  Printf.printf
    "\n== Rigorous range bounds: corpus soundness + search pruning ==\n";
  let range =
    range_bench
      ~samples:(if small_soundness then 12 else 24)
      ~workloads:(batch_workloads ~small:small_soundness ())
      ()
  in
  write_json ~path:out ~soundness ~batch ~model ~dist ~server ~telemetry
    ~fpcore ~range rows;
  Printf.printf "wrote %s\n" out;
  (rows, batch, model, dist, soundness, server, telemetry, fpcore, range)
