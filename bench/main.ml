(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation, plus the ablations DESIGN.md calls out, a
   Bechamel micro-benchmark suite (one Test.make per table), and the
   tuning hot-path perf tracker (BENCH_search.json).

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table1       # one experiment
     dune exec bench/main.exe -- -j 4 fig4    # sweep points on 4 domains
     ids: table1 table2 table3 table4 fig4 fig5 fig6 fig7 fig8 fig9
          ablation-inline ablation-opt ablation-precision ablation-activity
          ablation-search perf-search smoke serve-bench telemetry-bench
          batch-smoke model-smoke dist-smoke range-smoke bechamel all *)

let usage () =
  print_endline
    "usage: main.exe [-j N] [table1|table2|table3|table4|fig4|fig5|fig6|fig7|\n\
    \                 fig8|fig9|ablation-inline|ablation-opt|ablation-precision|\n\
    \                 ablation-activity|ablation-search|perf-search|smoke|\n\
    \                 serve-bench|telemetry-bench|batch-smoke|model-smoke|\n\
    \                 dist-smoke|range-smoke|bechamel|all]\n\
     -j N   worker domains for parallel sweeps / candidate evaluation\n\
    \        (default: Domain.recommended_domain_count () - 1, min 1)";
  exit 1

let all ~jobs () =
  Tables.table1 ();
  Tables.table3 ();
  Tables.table4 ();
  Tables.suite ();
  let sweeps = Figures.run_all ~jobs () in
  Tables.table2 ~sweeps ();
  Ablations.run_all ();
  ignore (Perf.search_bench ~jobs:(max jobs 2) ());
  Micro.run ()

(* Gates on the BENCH_search.json "server" block: percentiles present
   and ordered, every response's outcome field-identical to a direct
   one-shot Search.tune, warm cross-request cache hit rate > 0.9, and —
   on real multi-core hosts only (a single exposed CPU time-slices the
   concurrent requests, like the parallel_speedup expectation) —
   concurrent throughput at least matching the sequential replay. *)
let serve_block_ok (sv : Perf.server_block) =
  let identical = List.for_all (fun r -> r.Perf.v_identical) sv.Perf.sv_rows in
  let percentiles_ok =
    sv.Perf.sv_p50_ms > 0. && sv.Perf.sv_p99_ms >= sv.Perf.sv_p50_ms
  in
  let warm_ok = sv.Perf.sv_warm_hit_rate > 0.9 in
  let throughput_ok =
    Domain.recommended_domain_count () < 2
    || Perf.sv_conc_rps sv >= Perf.sv_seq_rps sv
  in
  Printf.printf
    "serve gates: outcomes identical to one-shot runs: %b; p50/p99 \
     present: %b; warm cache hit rate > 0.9: %b (%.3f); concurrent >= \
     sequential throughput (multi-core hosts): %b\n"
    identical percentiles_ok warm_ok sv.Perf.sv_warm_hit_rate throughput_ok;
  identical && percentiles_ok && warm_ok && throughput_ok

(* `dune build @serve-smoke` runs this after the protocol-level smoke:
   the server bench block itself is a gate, at tiny workload sizes. *)
let serve_bench () =
  let sv =
    Perf.server_bench ~rounds:2 ~workloads:(Perf.batch_workloads ~small:true ())
      ()
  in
  Perf.print_server sv;
  if not (serve_block_ok sv) then exit 1

(* Gates on the BENCH_search.json "telemetry" block: every mid-traffic
   scrape (stats / Prometheus / traces) answered sanely with a
   non-empty exposition, and — on real multi-core hosts only (on one
   CPU the ticker thread and the measured requests time-slice each
   other, so the delta measures scheduling noise) — enabled-telemetry
   throughput within 5% of the disabled daemon. *)
let telemetry_block_ok (tl : Perf.telemetry_block) =
  let delta = Perf.telemetry_delta_pct tl in
  let scrapes_ok = tl.Perf.tl_scrapes_ok && tl.Perf.tl_prom_bytes > 0 in
  let delta_ok = Domain.recommended_domain_count () < 2 || delta <= 5.0 in
  Printf.printf
    "telemetry gates: mid-traffic scrapes sane with non-empty exposition: \
     %b; enabled within 5%% of disabled (multi-core hosts): %b (%+.2f%%)\n"
    scrapes_ok delta_ok delta;
  scrapes_ok && delta_ok

(* `dune build @telemetry-smoke` runs this after the in-process smoke:
   the telemetry bench block itself is a gate, at tiny workload sizes. *)
let telemetry_bench () =
  let tl =
    Perf.telemetry_bench ~rounds:2
      ~workloads:(Perf.batch_workloads ~small:true ())
      ()
  in
  Perf.print_telemetry tl;
  if not (telemetry_block_ok tl) then exit 1

(* Gates on the BENCH_search.json "range" block (DESIGN.md §17):
   soundness — zero kernels where a certified bound sits below the
   sampled demotion error, with the whole 48-kernel corpus analyzed and
   a meaningful share actually certifying; pruning — in both threshold
   regimes the rigorous prune_bound never changes the chosen set and
   never costs executions, every pruned acceptance comes with strictly
   fewer executions, and in the loose regime (threshold at the certified
   bound, where certification can fire) at least 3 of the 5 paper
   workloads prune strictly. *)
let range_block_ok (rg : Perf.range_block) =
  let corpus_ok = List.length rg.Perf.rg_sound >= 40 in
  let unsound = List.length (Perf.range_unsound rg.Perf.rg_sound) in
  let certified = Perf.range_certified rg.Perf.rg_sound in
  let identical =
    List.for_all
      (fun r -> r.Perf.p_identical && r.Perf.p_loose_identical)
      rg.Perf.rg_prune
  in
  let never_worse =
    List.for_all
      (fun r ->
        r.Perf.p_pruned_execs <= r.Perf.p_baseline_execs
        && r.Perf.p_loose_pruned_execs <= r.Perf.p_loose_baseline_execs)
      rg.Perf.rg_prune
  in
  let pruned_means_fewer =
    List.for_all
      (fun r ->
        (r.Perf.p_pruned = 0
        || r.Perf.p_pruned_execs < r.Perf.p_baseline_execs)
        && (r.Perf.p_loose_pruned = 0
           || r.Perf.p_loose_pruned_execs < r.Perf.p_loose_baseline_execs))
      rg.Perf.rg_prune
  in
  let strictly_fewer =
    List.length
      (List.filter
         (fun r ->
           r.Perf.p_pruned_execs < r.Perf.p_baseline_execs
           || r.Perf.p_loose_pruned_execs < r.Perf.p_loose_baseline_execs)
         rg.Perf.rg_prune)
  in
  Printf.printf
    "range gates: corpus fully analyzed (>= 40 kernels): %b (%d); zero \
     UNSOUND bounds: %b (%d certified); pruned sets bit-identical to \
     hybrid: %b; pruning never costs executions: %b; every pruned accept \
     saves executions: %b; strictly fewer executions on >= 3 workloads: %b \
     (%d/%d)\n"
    corpus_ok
    (List.length rg.Perf.rg_sound)
    (unsound = 0) certified identical never_worse pruned_means_fewer
    (strictly_fewer >= 3) strictly_fewer
    (List.length rg.Perf.rg_prune);
  corpus_ok && unsound = 0 && certified > 0 && identical && never_worse
  && pruned_means_fewer && strictly_fewer >= 3

(* `dune build @range-smoke` runs this: the range bench block itself is
   a gate, at tiny workload sizes. *)
let range_smoke () =
  let rg =
    Perf.range_bench ~samples:12
      ~workloads:(Perf.batch_workloads ~small:true ())
      ()
  in
  if not (range_block_ok rg) then exit 1

(* Tiny-size smoke pass (seconds, not minutes): exercises the sweep
   plumbing, the parallel search path and the compile cache so
   `dune build @bench-smoke` gives CI-style coverage of the harness. *)
let smoke ~jobs () =
  let sweep = Figures.fig4 ~jobs ~sizes:[ 2_000; 5_000 ] () in
  ignore sweep;
  let rows, batch, model, dist, soundness, server, telemetry, fpcore, range =
    Perf.search_bench ~jobs:(max jobs 2) ~out:"BENCH_search.smoke.json"
      ~workloads:(Perf.smoke_workloads ()) ~small_soundness:true ()
  in
  let ok = List.for_all (fun r -> r.Perf.identical) rows in
  let batch_ok = List.for_all (fun r -> r.Perf.b_identical) batch in
  let hits =
    List.for_all
      (fun r -> r.Perf.cache.Cheffp_ir.Compile_cache.hits > 0)
      rows
  in
  let traced =
    List.for_all
      (fun r -> r.Perf.phases <> [] && r.Perf.pool.Perf.pu_tasks > 0)
      rows
  in
  let overhead_ok = Perf.overhead_guard ~limit_pct:2.0 rows in
  let sound = Perf.soundness_coverage soundness = 1.0 in
  let model_ok =
    List.for_all
      (fun r ->
        r.Perf.m_demoted_identical
        && r.Perf.m_hybrid_execs < r.Perf.m_measured_execs)
      model
  in
  let dist_ok = List.for_all (fun r -> r.Perf.d_identical) dist in
  let server_ok = serve_block_ok server in
  let telemetry_ok = telemetry_block_ok telemetry in
  let fpcore_ok =
    fpcore.Perf.fp_kernels >= 40 && fpcore.Perf.fp_roundtrip_exact
  in
  let range_ok = range_block_ok range in
  Printf.printf
    "smoke: outcomes identical across jobs (incl. instrumented): %b; \
     batched search outcomes identical to scalar: %b; cache hits on every \
     workload: %b; traced phases + pool metrics present: %b; \
     disabled-instrumentation overhead < 2%%: %b; estimate sound on every \
     benchmark: %b; hybrid = measured set with fewer executions: %b; \
     input-sweep samples bit-identical to scalar: %b; server block gates \
     pass: %b; telemetry block gates pass: %b; fpcore corpus >= 40 kernels \
     with exact round trips: %b; range block gates pass: %b\n"
    ok batch_ok hits traced overhead_ok sound model_ok dist_ok server_ok
    telemetry_ok fpcore_ok range_ok;
  if
    not
      (ok && batch_ok && hits && traced && overhead_ok && sound && model_ok
     && dist_ok && server_ok && telemetry_ok && fpcore_ok && range_ok)
  then exit 1

(* Batched-search smoke (`dune build @batch-smoke`): tiny batched
   searches must be bit-identical to their scalar counterparts, the
   sweeps must actually happen (batched_runs > 0), and the batch.lanes
   gauge must land in the exported metrics. *)
let batch_smoke () =
  let rows =
    List.map Perf.measure_batch (Perf.batch_workloads ~small:true ())
  in
  Perf.print_batch_rows rows;
  let identical = List.for_all (fun r -> r.Perf.b_identical) rows in
  let swept = List.exists (fun r -> r.Perf.b_batched_runs > 0) rows in
  let lanes_gauge =
    match
      List.assoc_opt "batch.lanes" (Cheffp_obs.Metrics.snapshot ())
    with
    | Some (Cheffp_obs.Metrics.Gauge v) -> v
    | _ -> 0.
  in
  Printf.printf
    "batch-smoke: outcomes_identical: %b; batched sweeps ran: %b; \
     batch.lanes gauge: %g\n"
    identical swept lanes_gauge;
  if not (identical && swept && lanes_gauge > 0.) then exit 1

(* Input-sweep sampling smoke (`dune build @dist-smoke`): Monte-Carlo
   sweeps on the five paper workloads must (a) beat equal-count scalar
   runs on samples/sec via SoA lane batching alone (jobs=1 — the lane
   speedup is core-count independent), (b) stay bit-identical to the
   per-sample scalar runs with every divergence accounted by the
   fallback (no silent ones — identity is the proof), and (c) make the
   p99-targeted search choose a different demotion set than single-point
   tuning on at least one workload, with the chosen configuration SOUND
   against the shadow oracle at sampled points. The pool axis
   (sweep chunks over domains) reads host_cores and is only gated on
   real multi-core hosts, matching the parallel_speedup convention. *)
let dist_smoke () =
  let host_cores = Domain.recommended_domain_count () in
  let jobs = max 2 (min 4 (host_cores - 1)) in
  let rows =
    List.map
      (Perf.measure_dist ~samples:128 ~jobs)
      (Perf.batch_workloads ~small:true ())
  in
  Perf.print_dist_rows rows;
  let identical = List.for_all (fun r -> r.Perf.d_identical) rows in
  let sweep_faster =
    List.for_all (fun r -> Perf.dist_sweep_rate r > Perf.dist_scalar_rate r) rows
  in
  let pool_ok =
    host_cores < 2
    || List.for_all
         (fun r -> Perf.dist_pool_rate r >= Perf.dist_sweep_rate r)
         rows
  in
  let sets_differ =
    List.exists (fun r -> r.Perf.d_point_demoted <> r.Perf.d_quantile_demoted) rows
  in
  let sound = List.for_all (fun r -> r.Perf.d_sound) rows in
  Printf.printf
    "dist-smoke: per-sample results bit-identical to scalar (all \
     divergences fell back, none silent): %b; input-sweep > 1x samples/sec \
     vs scalar on every workload: %b; pool >= single-domain sweep \
     (multi-core hosts): %b; quantile-targeted set differs from \
     single-point on >= 1 workload: %b; quantile configs sound vs shadow \
     oracle at sampled points: %b\n"
    identical sweep_faster pool_ok sets_differ sound;
  if host_cores < 2 then
    Printf.printf
      "(single-core host: pool-scaling expectation skipped — sweep chunks \
       time-slice one CPU; the lane speedup gate still applies)\n";
  if not (identical && sweep_faster && pool_ok && sets_differ && sound) then
    exit 1

(* Profile-guided-search smoke (`dune build @model-smoke`): on every
   tiny paper workload the hybrid strategy must choose the measured
   set with strictly fewer executions, the modelled strategy must pay
   exactly one augmented run and zero candidate executions (with the
   warm re-run served from the profile cache), and the modelled-chosen
   configuration must validate against the double-double shadow
   oracle. *)
let model_smoke () =
  let workloads = Perf.batch_workloads ~small:true () in
  let rows = List.map Perf.measure_model workloads in
  Perf.print_model_rows rows;
  let identical = List.for_all (fun r -> r.Perf.m_demoted_identical) rows in
  let fewer =
    List.for_all
      (fun r -> r.Perf.m_hybrid_execs < r.Perf.m_measured_execs)
      rows
  in
  let one_augmented =
    List.for_all
      (fun r ->
        r.Perf.m_modelled_augmented_runs = 1
        && r.Perf.m_modelled_execs = 0
        && r.Perf.m_modelled_confirmations <= 2)
      rows
  in
  let profile_hits =
    List.for_all (fun r -> r.Perf.m_profile_cache_hits > 0) rows
  in
  let sound =
    (* margin 2.0: the same headroom Tuner.tune's default budget keeps
       for what the first-order model does not see (higher-order and
       interaction terms); the adapt bound can undershoot the shadow
       measurement by a percent on bs_price. *)
    List.for_all2
      (fun (w : Perf.workload) r ->
        let v =
          Cheffp_shadow.Oracle.check_estimate ~margin:2.0 ~prog:w.Perf.prog
            ~func:w.Perf.func ~config:r.Perf.m_modelled_config w.Perf.args
        in
        v.Cheffp_shadow.Oracle.sound)
      workloads rows
  in
  Printf.printf
    "model-smoke: hybrid set = measured set: %b; hybrid executions < \
     measured: %b; modelled = 1 augmented run + <= 2 confirmations, 0 \
     candidate executions: %b; warm re-run hit the profile cache: %b; \
     modelled config sound vs shadow oracle: %b\n"
    identical fewer one_augmented profile_hits sound;
  if not (identical && fewer && one_augmented && profile_hits && sound) then
    exit 1

let () =
  Printf.printf "CHEF-FP reproduction benchmark harness\n";
  Printf.printf "(paper: Fast And Automatic Floating Point Error Analysis \
                 With CHEF-FP, IPPS 2023)\n";
  let jobs = ref (Cheffp_util.Pool.default_jobs ()) in
  let cmd = ref "all" in
  let rec parse = function
    | [] -> ()
    | "-j" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | _ -> usage ());
        parse rest
    | arg :: rest ->
        cmd := arg;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let jobs = !jobs in
  match !cmd with
  | "all" -> all ~jobs ()
  | "table1" -> Tables.table1 ()
  | "table2" -> Tables.table2 ()
  | "table3" -> Tables.table3 ()
  | "table4" -> Tables.table4 ()
  | "fig4" -> ignore (Figures.fig4 ~jobs ())
  | "fig5" -> ignore (Figures.fig5 ~jobs ())
  | "fig6" -> ignore (Figures.fig6 ~jobs ())
  | "fig7" -> ignore (Figures.fig7 ~jobs ())
  | "fig8" -> ignore (Figures.fig8 ~jobs ())
  | "fig9" -> ignore (Figures.fig9 ())
  | "ablation-inline" -> Ablations.inline ()
  | "ablation-opt" -> Ablations.opt ()
  | "ablation-precision" -> Ablations.precision ()
  | "ablation-activity" -> Ablations.activity ()
  | "ablation-search" ->
      Ablations.search ();
      ignore (Perf.search_bench ~jobs:(max jobs 2) ())
  | "perf-search" -> ignore (Perf.search_bench ~jobs:(max jobs 2) ())
  | "smoke" -> smoke ~jobs ()
  | "serve-bench" -> serve_bench ()
  | "telemetry-bench" -> telemetry_bench ()
  | "batch-smoke" -> batch_smoke ()
  | "model-smoke" -> model_smoke ()
  | "dist-smoke" -> dist_smoke ()
  | "range-smoke" -> range_smoke ()
  | "suite" -> Tables.suite ()
  | "bechamel" -> Micro.run ()
  | _ -> usage ()
