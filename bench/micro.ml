(* Bechamel micro-benchmarks: one Test.make per paper table, measuring
   the analysis kernel that regenerates it (small workloads so the OLS
   fit converges quickly). *)

open Bechamel
open Toolkit
module B = Cheffp_benchmarks
module E = Cheffp_core.Estimate
module Model = Cheffp_core.Model

let table1_kernel () =
  ignore
    (Cheffp_core.Tuner.tune ~prog:B.Arclength.program
       ~func:B.Arclength.func_name
       ~args:(B.Arclength.args ~n:2_000)
       ~threshold:1e-5 ())

let table2_kernel =
  let est =
    lazy
      (E.estimate_error ~model:(Model.adapt ())
         ~options:{ E.default_options with E.per_variable = false }
         ~prog:B.Simpsons.program ~func:B.Simpsons.func_name ())
  in
  fun () ->
    ignore (E.run (Lazy.force est) (B.Simpsons.args ~a:0. ~b:Float.pi ~n:2_000))

let table3_kernel =
  let w = lazy (B.Kmeans.generate ~npoints:1_000 ()) in
  let est =
    lazy
      (E.estimate_error ~model:(Model.adapt ()) ~prog:B.Kmeans.program
         ~func:B.Kmeans.func_name ())
  in
  fun () -> ignore (E.run (Lazy.force est) (B.Kmeans.args (Lazy.force w)))

let table4_kernel =
  let w = lazy (B.Blackscholes.generate ~n:64 ()) in
  let est =
    lazy
      (let config = B.Blackscholes.Fast_log_sqrt_exp in
       let builtins = Cheffp_ir.Builtins.create () in
       Cheffp_fastapprox.Fastapprox.register_builtins builtins;
       let deriv = Cheffp_ad.Deriv.default () in
       Cheffp_fastapprox.Fastapprox.register_derivatives deriv;
       let model =
         Model.approx_functions
           ~pairs:(B.Blackscholes.approx_pairs config)
           ~eval:B.Blackscholes.eval_exact
           ~eval_approx:B.Blackscholes.eval_approx
       in
       E.estimate_error ~model ~deriv ~builtins
         ~prog:(B.Blackscholes.program B.Blackscholes.Exact)
         ~func:B.Blackscholes.price_func ())
  in
  fun () ->
    let w = Lazy.force w in
    let est = Lazy.force est in
    for i = 0 to 7 do
      ignore (E.run est (B.Blackscholes.price_args w i))
    done

(* Batched-execution microbenchmark (DESIGN.md §11): a pure
   straight-line kernel — no branches or loops, so lanes can never
   diverge — swept at 1..64 lanes, against a scalar baseline running the
   same number of precompiled per-config executions. Per-run time should
   grow sublinearly in the lane count: the per-node closure dispatch is
   paid once per sweep, not once per configuration. *)
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module Ir = Cheffp_ir

let batch_src =
  {|func poly(x: f64, y: f64): f64 {
  var a: f64 = x * y + 1.0;
  var b: f64 = a * a - x;
  var c: f64 = b / (a + 2.0);
  var d: f64 = sqrt(c * c + 1.0);
  return d * b + a;
}|}

let batch_lane_counts = [ 1; 2; 4; 8; 16; 32; 64 ]

let batch_setup =
  lazy
    (let prog = Ir.Parser.parse_program batch_src in
     Ir.Typecheck.check_program prog;
     let b = Ir.Batch.compile ~prog ~func:"poly" () in
     (* Cycle demotions so every lane is a distinct configuration. *)
     let config_of i =
       match i mod 4 with
       | 0 -> Config.double
       | 1 -> Config.demote Config.double "a" Fp.F32
       | 2 -> Config.demote_all Config.double [ "b"; "c" ] Fp.F32
       | _ -> Config.demote_all Config.double [ "a"; "d" ] Fp.F16
     in
     (prog, b, config_of))

let batch_args = [ Ir.Interp.Aflt 1.25; Ir.Interp.Aflt 0.75 ]

let batch_kernel lanes =
  let _, b, config_of = Lazy.force batch_setup in
  let configs = Array.init lanes config_of in
  fun () -> ignore (Ir.Batch.run_floats b ~configs batch_args)

let scalar_kernel lanes =
  let prog, _, config_of = Lazy.force batch_setup in
  let compiled =
    Array.init lanes (fun i ->
        Ir.Compile.compile ~config:(config_of i) ~prog ~func:"poly" ())
  in
  fun () -> Array.iter (fun c -> ignore (Ir.Compile.run c batch_args)) compiled

let batch_tests =
  Test.make_grouped ~name:"batch"
    (List.concat_map
       (fun lanes ->
         [
           Test.make
             ~name:(Printf.sprintf "batched:lanes=%02d" lanes)
             (Staged.stage (batch_kernel lanes));
           Test.make
             ~name:(Printf.sprintf "scalar:configs=%02d" lanes)
             (Staged.stage (scalar_kernel lanes));
         ])
       batch_lane_counts)

(* Profile-scoring microbenchmark (DESIGN.md §12): once the error-atom
   profile exists, scoring a candidate configuration is a dot product
   over its variables — the whole point of the profile-guided search is
   that this is nanoseconds where a measured trial is milliseconds.
   Swept over the profile size. *)
module Profile = Cheffp_core.Profile

let profile_var_counts = [ 10; 100; 1_000 ]

let profile_of_size n =
  Profile.of_atoms ~func:"f"
    (List.init n (fun i ->
         (Printf.sprintf "v%d" i, 1e-6 *. float_of_int (i + 1))))

let score_kernel n =
  let p = profile_of_size n in
  (* Demote every other variable: the config lookup path, not just the
     all-or-nothing fast paths. *)
  let cfg =
    Config.demote_all Config.double
      (List.filteri
         (fun i _ -> i mod 2 = 0)
         (List.init n (fun i -> Printf.sprintf "v%d" i)))
      Fp.F32
  in
  fun () -> ignore (Profile.score p cfg)

let profile_tests =
  Test.make_grouped ~name:"profile"
    (List.map
       (fun n ->
         Test.make
           ~name:(Printf.sprintf "score:vars=%04d" n)
           (Staged.stage (score_kernel n)))
       profile_var_counts)

let tests =
  Test.make_grouped ~name:"micro"
    [
      Test.make_grouped ~name:"tables"
        [
          Test.make ~name:"table1:tune-arclength" (Staged.stage table1_kernel);
          Test.make ~name:"table2:analyze-simpsons" (Staged.stage table2_kernel);
          Test.make ~name:"table3:analyze-kmeans" (Staged.stage table3_kernel);
          Test.make ~name:"table4:approx-blackscholes"
            (Staged.stage table4_kernel);
        ];
      batch_tests;
      profile_tests;
    ]

let run () =
  print_endline
    "\n== Bechamel micro-benchmarks (paper tables + batched execution + \
     profile scoring) ==";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let mean_ns =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> est
        | _ -> Float.nan
      in
      rows := (name, mean_ns) :: !rows)
    results;
  Cheffp_util.Table.print
    ~header:[ "kernel"; "time per run" ]
    (List.map
       (fun (name, ns) -> [ name; Printf.sprintf "%.3f ms" (ns /. 1e6) ])
       (List.sort compare !rows))
