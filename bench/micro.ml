(* Bechamel micro-benchmarks: one Test.make per paper table, measuring
   the analysis kernel that regenerates it (small workloads so the OLS
   fit converges quickly). *)

open Bechamel
open Toolkit
module B = Cheffp_benchmarks
module E = Cheffp_core.Estimate
module Model = Cheffp_core.Model

let table1_kernel () =
  ignore
    (Cheffp_core.Tuner.tune ~prog:B.Arclength.program
       ~func:B.Arclength.func_name
       ~args:(B.Arclength.args ~n:2_000)
       ~threshold:1e-5 ())

let table2_kernel =
  let est =
    lazy
      (E.estimate_error ~model:(Model.adapt ())
         ~options:{ E.default_options with E.per_variable = false }
         ~prog:B.Simpsons.program ~func:B.Simpsons.func_name ())
  in
  fun () ->
    ignore (E.run (Lazy.force est) (B.Simpsons.args ~a:0. ~b:Float.pi ~n:2_000))

let table3_kernel =
  let w = lazy (B.Kmeans.generate ~npoints:1_000 ()) in
  let est =
    lazy
      (E.estimate_error ~model:(Model.adapt ()) ~prog:B.Kmeans.program
         ~func:B.Kmeans.func_name ())
  in
  fun () -> ignore (E.run (Lazy.force est) (B.Kmeans.args (Lazy.force w)))

let table4_kernel =
  let w = lazy (B.Blackscholes.generate ~n:64 ()) in
  let est =
    lazy
      (let config = B.Blackscholes.Fast_log_sqrt_exp in
       let builtins = Cheffp_ir.Builtins.create () in
       Cheffp_fastapprox.Fastapprox.register_builtins builtins;
       let deriv = Cheffp_ad.Deriv.default () in
       Cheffp_fastapprox.Fastapprox.register_derivatives deriv;
       let model =
         Model.approx_functions
           ~pairs:(B.Blackscholes.approx_pairs config)
           ~eval:B.Blackscholes.eval_exact
           ~eval_approx:B.Blackscholes.eval_approx
       in
       E.estimate_error ~model ~deriv ~builtins
         ~prog:(B.Blackscholes.program B.Blackscholes.Exact)
         ~func:B.Blackscholes.price_func ())
  in
  fun () ->
    let w = Lazy.force w in
    let est = Lazy.force est in
    for i = 0 to 7 do
      ignore (E.run est (B.Blackscholes.price_args w i))
    done

let tests =
  Test.make_grouped ~name:"tables"
    [
      Test.make ~name:"table1:tune-arclength" (Staged.stage table1_kernel);
      Test.make ~name:"table2:analyze-simpsons" (Staged.stage table2_kernel);
      Test.make ~name:"table3:analyze-kmeans" (Staged.stage table3_kernel);
      Test.make ~name:"table4:approx-blackscholes" (Staged.stage table4_kernel);
    ]

let run () =
  print_endline "\n== Bechamel micro-benchmarks (one per paper table) ==";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let mean_ns =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> est
        | _ -> Float.nan
      in
      rows := (name, mean_ns) :: !rows)
    results;
  Cheffp_util.Table.print
    ~header:[ "kernel"; "time per run" ]
    (List.map
       (fun (name, ns) -> [ name; Printf.sprintf "%.3f ms" (ns /. 1e6) ])
       (List.sort compare !rows))
