(* Ablation studies for the design choices DESIGN.md calls out. *)

module B = Cheffp_benchmarks
module E = Cheffp_core.Estimate
module Model = Cheffp_core.Model
module Meter = Cheffp_util.Meter
module Table = Cheffp_util.Table
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp

(* Inlined AssignError expressions (CHEF-FP) vs calling back into a
   host-language error function at run time for every assignment (the
   paper's argument for why source-level injection wins: the inlined
   expression is optimized and compiled with the adjoint). *)
let inline () =
  let n = 1_000_000 in
  let args = B.Arclength.args ~n in
  let time_est model =
    let est =
      E.estimate_error ~model
        ~options:{ E.default_options with E.per_variable = false }
        ~prog:B.Arclength.program ~func:B.Arclength.func_name ()
    in
    Gc.compact ();
    (* best of three runs to shed warm-up and GC noise *)
    let best = ref infinity in
    for _ = 1 to 3 do
      let _, s = Meter.time (fun () -> E.run est args) in
      if s < !best then best := s
    done;
    !best
  in
  let inlined = time_est (Model.adapt ()) in
  let callback =
    time_est
      (Model.external_ ~name:"cb" (fun ~adj ~value ~var:_ ->
           adj *. (value -. Fp.round Fp.F32 value)))
  in
  print_endline "\n== Ablation: inlined error expressions vs runtime callbacks ==";
  Table.print
    ~header:[ "error-code strategy"; "analysis time"; "relative" ]
    [
      [ "inlined (CHEF-FP)"; Printf.sprintf "%.3f s" inlined; "1.00x" ];
      [
        "runtime callback";
        Printf.sprintf "%.3f s" callback;
        Printf.sprintf "%.2fx" (callback /. inlined);
      ];
    ]

(* Optimizer + closure compiler vs executing the generated adjoint with
   the tree-walking interpreter, unoptimized: the "generated code is a
   candidate for compiler optimizations" claim. *)
let opt () =
  let n = 30_000 in
  let args = B.Arclength.args ~n in
  let time_with ~optimize ~interp =
    let est =
      E.estimate_error
        ~options:
          { E.default_options with E.per_variable = false; E.optimize = optimize }
        ~prog:B.Arclength.program ~func:B.Arclength.func_name ()
    in
    let run () = if interp then E.run_interpreted est args else E.run est args in
    Gc.compact ();
    let _, s = Meter.time run in
    s
  in
  let best = time_with ~optimize:true ~interp:false in
  let noopt = time_with ~optimize:false ~interp:false in
  let tree = time_with ~optimize:true ~interp:true in
  let tree_noopt = time_with ~optimize:false ~interp:true in
  print_endline "\n== Ablation: optimization pipeline on the generated adjoint ==";
  Table.print
    ~header:[ "execution"; "optimizer"; "analysis time"; "relative" ]
    [
      [ "compiled"; "on"; Printf.sprintf "%.3f s" best; "1.00x" ];
      [ "compiled"; "off"; Printf.sprintf "%.3f s" noopt;
        Printf.sprintf "%.2fx" (noopt /. best) ];
      [ "interpreted"; "on"; Printf.sprintf "%.3f s" tree;
        Printf.sprintf "%.2fx" (tree /. best) ];
      [ "interpreted"; "off"; Printf.sprintf "%.3f s" tree_noopt;
        Printf.sprintf "%.2fx" (tree_noopt /. best) ];
    ]

(* Source vs extended intermediate rounding (paper SS V-B recommends
   "source"): same tuned configuration, different rounding semantics. *)
let precision () =
  let n = 100_000 in
  let args = B.Arclength.args ~n in
  let outcome mode =
    Cheffp_core.Tuner.tune ~mode ~prog:B.Arclength.program
      ~func:B.Arclength.func_name ~args ~threshold:1e-5 ()
  in
  let src = outcome Config.Source in
  let ext = outcome Config.Extended in
  print_endline "\n== Ablation: intermediate rounding mode (paper SS V-B) ==";
  Table.print
    ~header:[ "rounding mode"; "actual error"; "modelled speedup"; "casts" ]
    (List.map
       (fun (label, (o : Cheffp_core.Tuner.outcome)) ->
         let ev = o.Cheffp_core.Tuner.evaluation in
         [
           label;
           Table.fe ev.Cheffp_core.Tuner.actual_error;
           Table.ff ev.Cheffp_core.Tuner.modelled_speedup;
           string_of_int ev.Cheffp_core.Tuner.casts;
         ])
       [ ("source (per-op)", src); ("extended (store-only)", ext) ])

(* Activity analysis: identical results, less adjoint work. *)
let activity () =
  let w = B.Kmeans.generate ~npoints:30_000 () in
  let args = B.Kmeans.args w in
  let run use_activity =
    let est =
      E.estimate_error
        ~model:(Model.adapt ())
        ~options:{ E.default_options with E.use_activity = use_activity }
        ~prog:B.Kmeans.program ~func:B.Kmeans.func_name ()
    in
    Gc.compact ();
    Meter.time (fun () -> E.run est args)
  in
  let r_off, t_off = run false in
  let r_on, t_on = run true in
  print_endline "\n== Ablation: activity analysis ==";
  Table.print
    ~header:[ "activity analysis"; "total error"; "analysis time" ]
    [
      [ "off"; Table.fe r_off.E.total_error; Printf.sprintf "%.3f s" t_off ];
      [ "on"; Table.fe r_on.E.total_error; Printf.sprintf "%.3f s" t_on ];
    ];
  Printf.printf "estimates identical: %b\n"
    (r_off.E.total_error = r_on.E.total_error)

(* AD-guided tuning vs Precimonious-style search: the paper's SS I claim
   that search-based approaches need many expensive program runs. *)
let search () =
  let cases =
    [
      ( "arclength",
        B.Arclength.program,
        B.Arclength.func_name,
        B.Arclength.args ~n:20_000,
        1e-5 );
      ( "simpsons",
        B.Simpsons.program,
        B.Simpsons.func_name,
        B.Simpsons.args ~a:0. ~b:Float.pi ~n:20_000,
        1e-6 );
    ]
  in
  print_endline "\n== Ablation: AD-guided tuning vs search-based tuning ==";
  Table.print
    ~header:
      [ "benchmark"; "method"; "program runs"; "demoted"; "actual error";
        "speedup"; "tuning time" ]
    (List.concat_map
       (fun (name, prog, func, args, threshold) ->
         Gc.compact ();
         let (ad, ad_s) =
           Meter.time (fun () ->
               Cheffp_core.Tuner.tune ~prog ~func ~args ~threshold ())
         in
         Gc.compact ();
         (* Pinned to `Measured: this ablation quantifies the paper's
            §I cost claim about execution-validated search, so the
            profile-guided pruning must stay out of the comparison. *)
         let (srch, s_s) =
           Meter.time (fun () ->
               Cheffp_core.Search.tune ~strategy:`Measured ~prog ~func ~args
                 ~threshold ())
         in
         [
           [
             name; "CHEF-FP (AD)"; "2";
             string_of_int (List.length ad.Cheffp_core.Tuner.demoted);
             Table.fe ad.Cheffp_core.Tuner.evaluation.Cheffp_core.Tuner.actual_error;
             Table.ff ad.Cheffp_core.Tuner.evaluation.Cheffp_core.Tuner.modelled_speedup;
             Printf.sprintf "%.3f s" ad_s;
           ];
           [
             ""; "search (Precimonious-style)";
             string_of_int srch.Cheffp_core.Search.executions;
             string_of_int (List.length srch.Cheffp_core.Search.demoted);
             Table.fe srch.Cheffp_core.Search.evaluation.Cheffp_core.Tuner.actual_error;
             Table.ff srch.Cheffp_core.Search.evaluation.Cheffp_core.Tuner.modelled_speedup;
             Printf.sprintf "%.3f s" s_s;
           ];
         ])
       cases)

let run_all () =
  inline ();
  opt ();
  precision ();
  activity ();
  search ()
