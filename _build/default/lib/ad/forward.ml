open Cheffp_ir
open Ast

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let fwd_name name ~wrt = name ^ "_fwd_" ^ wrt

let f64s = Sflt Cheffp_precision.Fp.F64

let simp = Optimize.fold_expr ~fast_math:true
let ( *: ) a b = simp (Binop (Mul, a, b))
let ( /: ) a b = simp (Binop (Div, a, b))
let ( +: ) a b = simp (Binop (Add, a, b))
let ( -: ) a b = simp (Binop (Sub, a, b))

let differentiate ?deriv prog name ~wrt =
  let deriv = match deriv with Some d -> d | None -> Deriv.default () in
  let f = func_exn prog name in
  (match f.ret with
  | Some (Sflt _) -> ()
  | Some Sint | None -> err "function %S must return a float" name);
  (match
     List.find_opt (fun p -> p.pname = wrt && p.pmode = In) f.params
   with
  | Some { pty = Tscalar (Sflt _); _ } -> ()
  | Some _ -> err "parameter %S of %S is not a float scalar" wrt name
  | None -> err "function %S has no parameter %S" name wrt);
  let nf = Normalize.normalize_func prog f in
  let local_decls = Normalize.locals nf in
  let names = Rename.create () in
  Rename.reserve_func names nf;
  let fresh base = Rename.fresh names base in

  let var_tys : (string, ty) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun p -> Hashtbl.replace var_tys p.pname p.pty) nf.params;
  List.iter
    (fun (n, dty) ->
      Hashtbl.replace var_tys n
        (match dty with Dscalar s -> Tscalar s | Darr (s, _) -> Tarr s))
    local_decls;
  let is_float v =
    match Hashtbl.find_opt var_tys v with
    | Some (Tscalar (Sflt _)) | Some (Tarr (Sflt _)) -> true
    | _ -> false
  in

  let is_param v = List.exists (fun p -> p.pname = v) nf.params in
  let tan_tbl : (string, string) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun v ty ->
      match ty with
      | Tscalar (Sflt _) -> Hashtbl.replace tan_tbl v (fresh ("_t_" ^ v))
      | Tarr (Sflt _) when not (is_param v) ->
          (* Float array parameters carry zero tangents (the derivative is
             with respect to a scalar), so they get no mirror. *)
          Hashtbl.replace tan_tbl v (fresh ("_t_" ^ v))
      | _ -> ())
    var_tys;
  let tan v =
    match Hashtbl.find_opt tan_tbl v with
    | Some t -> t
    | None -> err "internal: no tangent for %S" v
  in

  let rec tangent e =
    match e with
    | Fconst _ | Iconst _ -> Fconst 0.
    | Var x -> (
        match Hashtbl.find_opt tan_tbl x with
        | Some t -> Var t
        | None -> Fconst 0.)
    | Idx (a, i) -> (
        match Hashtbl.find_opt tan_tbl a with
        | Some t -> Idx (t, i)
        | None -> Fconst 0.)
    | Unop (Neg, u) -> simp (Unop (Neg, tangent u))
    | Unop (Not, _) -> Fconst 0.
    | Binop (Add, a, b) -> tangent a +: tangent b
    | Binop (Sub, a, b) -> tangent a -: tangent b
    | Binop (Mul, a, b) -> (tangent a *: b) +: (a *: tangent b)
    | Binop (Div, a, b) -> (tangent a /: b) -: ((a *: tangent b) /: (b *: b))
    | Binop ((Mod | Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> Fconst 0.
    | Call (cname, args) -> (
        match Deriv.find deriv cname with
        | Some rule ->
            List.fold_left
              (fun acc (arg, partial) -> acc +: (simp partial *: tangent arg))
              (Fconst 0.)
              (rule ~args ~seed:(Fconst 1.))
        | None -> err "no derivative rule for intrinsic %S" cname)
  in

  let rec xform_stmt s =
    match s with
    | Assign ((Lvar v as lv), e) when is_float v ->
        let tmp = fresh "_tt" in
        [
          Decl { name = tmp; dty = Dscalar f64s; init = Some (tangent e) };
          Assign (lv, e);
          Assign (Lvar (tan v), Var tmp);
        ]
    | Assign (Lidx (a, i), e) when is_float a ->
        let tmp = fresh "_tt" in
        [
          Decl { name = tmp; dty = Dscalar f64s; init = Some (tangent e) };
          Assign (Lidx (a, i), e);
          Assign (Lidx (tan a, i), Var tmp);
        ]
    | Assign _ -> [ s ]
    | If (c, a, b) -> [ If (c, xform_block a, xform_block b) ]
    | For l -> [ For { l with body = xform_block l.body } ]
    | While (c, body) -> [ While (c, xform_block body) ]
    | Return (Some e) ->
        let tmp = fresh "_tv" in
        [
          Decl { name = tmp; dty = Dscalar f64s; init = Some (tangent e) };
          Return (Some (Var tmp));
        ]
    | Return None -> err "function %S must return a value" name
    | Call_stmt _ -> [ s ]
    | Decl _ -> [ s ]
    | Push _ | Pop _ -> err "cannot differentiate generated code"
  and xform_block stmts = List.concat_map xform_stmt stmts in

  let tangent_decls =
    List.filter_map
      (fun p ->
        match p.pty with
        | Tscalar (Sflt _) ->
            Some
              (Decl
                 {
                   name = tan p.pname;
                   dty = Dscalar f64s;
                   init = Some (if p.pname = wrt then Fconst 1. else Fconst 0.);
                 })
        | _ -> None)
      nf.params
  in
  (* Tangent mirrors for local declarations. *)
  let local_tangent_decls =
    List.filter_map
      (fun (n, dty) ->
        match dty with
        | Dscalar (Sflt _) ->
            Some (Decl { name = tan n; dty = Dscalar f64s; init = None })
        | Darr (Sflt _, size) ->
            Some (Decl { name = tan n; dty = Darr (f64s, size); init = None })
        | _ -> None)
      local_decls
  in
  (* Float array parameters: reject if the body writes them (their
     tangent storage is unavailable); reads produce zero tangent. *)
  let float_array_params =
    List.filter_map
      (fun p ->
        match p.pty with Tarr (Sflt _) -> Some p.pname | _ -> None)
      nf.params
  in
  let rec writes_array v = function
    | Assign (Lidx (a, _), _) -> a = v
    | If (_, x, y) -> List.exists (writes_array v) x || List.exists (writes_array v) y
    | For { body; _ } | While (_, body) -> List.exists (writes_array v) body
    | _ -> false
  in
  List.iter
    (fun a ->
      if List.exists (writes_array a) nf.body then
        err
          "forward mode: float array parameter %S is written in %S; use \
           reverse mode"
          a name)
    float_array_params;

  let nbody =
    let rec drop k l = if k = 0 then l else drop (k - 1) (List.tl l) in
    drop (List.length local_decls) nf.body
  in
  {
    fname = fwd_name name ~wrt;
    params = nf.params;
    ret = Some f64s;
    body =
      List.map (fun (n, dty) -> Decl { name = n; dty; init = None }) local_decls
      @ local_tangent_decls @ tangent_decls
      @ xform_block nbody;
  }
