open Cheffp_ir
open Ast

module Sset = Set.Make (String)

type t = { varied_set : Sset.t; useful_set : Sset.t }

let rec expr_vars acc = function
  | Fconst _ | Iconst _ -> acc
  | Var v -> Sset.add v acc
  | Idx (a, i) -> expr_vars (Sset.add a acc) i
  | Unop (_, e) -> expr_vars acc e
  | Binop (_, a, b) -> expr_vars (expr_vars acc a) b
  | Call (_, args) -> List.fold_left expr_vars acc args

let lvalue_target = function Lvar v -> v | Lidx (a, _) -> a

(* One monotone pass; returns the grown set. Statements are visited in
   syntactic order for [varied] and reverse order for [useful]; the outer
   fixpoint makes the visit order immaterial for correctness. *)
let rec varied_pass set stmts =
  List.fold_left
    (fun set s ->
      match s with
      | Decl { init = Some e; name; _ } ->
          if Sset.is_empty (Sset.inter (expr_vars Sset.empty e) set) then set
          else Sset.add name set
      | Decl _ -> set
      | Assign (lv, e) ->
          let sources = expr_vars Sset.empty e in
          let sources =
            match lv with
            | Lidx (_, i) -> expr_vars sources i
            | Lvar _ -> sources
          in
          if Sset.is_empty (Sset.inter sources set) then set
          else Sset.add (lvalue_target lv) set
      | If (_, a, b) -> varied_pass (varied_pass set a) b
      | For { body; _ } | While (_, body) -> varied_pass set body
      | Return _ | Call_stmt _ | Push _ | Pop _ -> set)
    set stmts

let rec useful_pass set stmts =
  List.fold_left
    (fun set s ->
      match s with
      | Assign (lv, e) ->
          if Sset.mem (lvalue_target lv) set then
            Sset.union set (expr_vars Sset.empty e)
          else set
      | Decl { init = Some e; name; _ } ->
          if Sset.mem name set then Sset.union set (expr_vars Sset.empty e)
          else set
      | Decl _ -> set
      | If (_, a, b) -> useful_pass (useful_pass set a) b
      | For { body; _ } | While (_, body) -> useful_pass set body
      | Return (Some e) -> Sset.union set (expr_vars Sset.empty e)
      | Return None | Call_stmt _ | Push _ | Pop _ -> set)
    set (List.rev stmts)

let fixpoint pass init body =
  let rec go set =
    let set' = pass set body in
    if Sset.equal set set' then set else go set'
  in
  go init

let analyze ~func ~independents ~dependents =
  {
    varied_set = fixpoint varied_pass (Sset.of_list independents) func.body;
    useful_set = fixpoint useful_pass (Sset.of_list dependents) func.body;
  }

let varied t v = Sset.mem v t.varied_set
let useful t v = Sset.mem v t.useful_set
let active t v = varied t v && useful t v
