(** Activity analysis (the paper's [isDiff]/[isLive] predicates).

    A variable is {e varied} if it (transitively) depends on an
    independent input, {e useful} if it (transitively) influences the
    dependent output, and {e active} if both. Adjoint propagation (and
    error estimation, whose models multiply by the adjoint) can be
    skipped for inactive assignments without changing any result; this
    is exposed as an optimisation toggle on {!Reverse.differentiate} and
    verified by tests.

    The analysis is a conservative fixpoint over the function body:
    arrays are treated as single units and control-flow joins merge. *)

open Cheffp_ir

type t

val analyze :
  func:Ast.func -> independents:string list -> dependents:string list -> t
(** [independents] are the input variable names that carry derivatives
    (typically the float parameters); [dependents] the outputs (typically
    the variables of the tail return expression). *)

val varied : t -> string -> bool
val useful : t -> string -> bool
val active : t -> string -> bool
