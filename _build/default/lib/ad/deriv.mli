(** Derivative rules for MiniFP intrinsics.

    A rule receives the call's argument expressions and a seed expression
    [s] (the adjoint flowing into the call, or 1 for a raw partial) and
    returns [(arg, s * d(call)/d(arg))] pairs — one per argument that
    carries derivative information. Arguments with no entry (integers,
    piecewise-constant intrinsics like [floor]) contribute nothing.

    The registry is extensible: the FastApprox library registers rules for
    its approximate intrinsics (the derivative of the exact counterpart,
    the standard smooth surrogate). *)

open Cheffp_ir

type rule =
  args:Ast.expr list -> seed:Ast.expr -> (Ast.expr * Ast.expr) list

type t

val default : unit -> t
(** Rules for every default intrinsic of {!Cheffp_ir.Builtins.create}. *)

val empty : unit -> t
val register : t -> string -> rule -> unit
val find : t -> string -> rule option

val alias : t -> string -> string -> unit
(** [alias t approx exact] gives [approx] the rule registered for
    [exact]. @raise Invalid_argument if [exact] has no rule. *)
