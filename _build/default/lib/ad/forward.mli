(** Forward-mode (tangent) AD over MiniFP.

    [differentiate prog name ~wrt:p] produces [name_fwd_p(params) : f64]
    computing the directional derivative of [name] with respect to the
    scalar float parameter [p]: every float variable gains a tangent that
    is propagated alongside the original computation. Used in tests to
    cross-validate the reverse mode and as a cheap option when only one
    input direction is needed. *)

open Cheffp_ir

exception Error of string

val differentiate :
  ?deriv:Deriv.t -> Ast.program -> string -> wrt:string -> Ast.func

val fwd_name : string -> wrt:string -> string
(** Name of the generated function, [name ^ "_fwd_" ^ wrt]. *)
