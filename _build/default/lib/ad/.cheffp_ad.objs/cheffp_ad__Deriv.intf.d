lib/ad/deriv.mli: Ast Cheffp_ir
