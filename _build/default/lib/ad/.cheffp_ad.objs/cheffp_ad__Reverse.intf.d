lib/ad/reverse.mli: Ast Cheffp_ir Deriv
