lib/ad/forward.ml: Ast Cheffp_ir Cheffp_precision Deriv Format Hashtbl List Normalize Optimize Rename
