lib/ad/deriv.ml: Ast Cheffp_ir Float Hashtbl Printf
