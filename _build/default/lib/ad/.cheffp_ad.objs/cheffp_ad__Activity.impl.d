lib/ad/activity.ml: Ast Cheffp_ir List Set String
