lib/ad/forward.mli: Ast Cheffp_ir Deriv
