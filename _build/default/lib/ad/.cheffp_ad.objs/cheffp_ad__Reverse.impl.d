lib/ad/reverse.ml: Activity Ast Cheffp_ir Cheffp_precision Deriv Format Hashtbl Inline List Normalize Optimize Rename
