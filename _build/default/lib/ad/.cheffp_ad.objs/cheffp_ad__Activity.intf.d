lib/ad/activity.mli: Ast Cheffp_ir
