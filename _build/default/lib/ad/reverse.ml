open Cheffp_ir
open Ast

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type info = {
  float_scalars : string list;
  float_arrays : string list;
  ret_var : string;
  adjoint_of : string -> string;
  fresh : string -> string;
  lookup_ty : string -> Ast.ty option;
}

type hook_ctx = {
  lhs : Ast.lvalue;
  lhs_base : string;
  rhs : Ast.expr;
  adjoint_var : string;
  value_var : string;
  enclosing_loops : string list;
  info : info;
}

type hooks = {
  extra_params : Ast.param list;
  prologue : info -> Ast.stmt list;
  on_assign : hook_ctx -> Ast.stmt list;
  epilogue : info -> Ast.stmt list;
}

let no_hooks =
  {
    extra_params = [];
    prologue = (fun _ -> []);
    on_assign = (fun _ -> []);
    epilogue = (fun _ -> []);
  }

let grad_name ?(suffix = "_grad") name = name ^ suffix

let f64s = Sflt Cheffp_precision.Fp.F64
let f64 = Tscalar f64s

let derivative_params f =
  List.filter_map
    (fun p ->
      match p.pty with
      | Tscalar (Sflt _) ->
          Some { pname = "_d_" ^ p.pname; pty = f64; pmode = Out }
      | Tarr (Sflt _) ->
          Some { pname = "_d_" ^ p.pname; pty = Tarr f64s; pmode = Out }
      | Tscalar Sint | Tarr Sint -> None)
    f.params

let lv_expr = function Lvar v -> Var v | Lidx (a, i) -> Idx (a, i)

let simp = Optimize.fold_expr ~fast_math:true
let ( *: ) a b = simp (Binop (Mul, a, b))
let ( /: ) a b = simp (Binop (Div, a, b))
let neg e = simp (Unop (Neg, e))
let add a b = simp (Binop (Add, a, b))

let differentiate ?deriv ?(hooks = no_hooks) ?(use_activity = false)
    ?(suffix = "_grad") prog name =
  let deriv = match deriv with Some d -> d | None -> Deriv.default () in
  let f = func_exn prog name in
  (match f.ret with
  | Some (Sflt _) -> ()
  | Some Sint | None -> err "function %S must return a float to be differentiated" name);
  List.iter
    (fun p ->
      if p.pmode = Out then
        err "function %S has out parameter %S; only [In] parameters are supported"
          name p.pname)
    f.params;
  let nf =
    try Normalize.normalize_func prog f with
    | Normalize.Error m | Inline.Error m -> err "%s" m
  in
  let local_decls = Normalize.locals nf in
  let rest =
    let rec drop k l = if k = 0 then l else drop (k - 1) (List.tl l) in
    drop (List.length local_decls) nf.body
  in
  (* The tail return becomes an assignment to a synthetic variable. *)
  let names = Rename.create () in
  Rename.reserve_func names nf;
  List.iter
    (fun p ->
      if Rename.mem names p.pname then
        err "hook parameter %S collides with a variable of %S" p.pname name;
      Rename.reserve names p.pname)
    hooks.extra_params;
  let fresh base = Rename.fresh names base in
  let ret_var = fresh "_ret" in
  let body_stmts, ret_expr =
    match List.rev rest with
    | Return (Some e) :: tl -> (List.rev tl, e)
    | _ -> err "function %S must end with a return statement" name
  in
  let rec reject_bad = function
    | Return _ -> err "function %S has a non-tail return" name
    | Push _ | Pop _ -> err "function %S contains push/pop; cannot differentiate generated code" name
    | Decl _ -> err "internal: declaration survived normalization in %S" name
    | If (_, a, b) ->
        List.iter reject_bad a;
        List.iter reject_bad b
    | For { body; _ } | While (_, body) -> List.iter reject_bad body
    | Assign _ | Call_stmt _ -> ()
  in
  List.iter reject_bad body_stmts;
  let body_stmts = body_stmts @ [ Assign (Lvar ret_var, ret_expr) ] in

  (* Variable typing for the normalized function. *)
  let var_tys : (string, ty) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun p -> Hashtbl.replace var_tys p.pname p.pty) nf.params;
  List.iter
    (fun (n, dty) ->
      Hashtbl.replace var_tys n
        (match dty with Dscalar s -> Tscalar s | Darr (s, _) -> Tarr s))
    local_decls;
  Hashtbl.replace var_tys ret_var f64;
  let is_float_base v =
    match Hashtbl.find_opt var_tys v with
    | Some (Tscalar (Sflt _)) | Some (Tarr (Sflt _)) -> true
    | Some (Tscalar Sint) | Some (Tarr Sint) -> false
    | None -> false (* loop counters *)
  in

  (* Activity (optional optimisation). *)
  let activity =
    if not use_activity then None
    else
      let independents =
        List.filter_map
          (fun p -> if is_float_base p.pname then Some p.pname else None)
          nf.params
      in
      Some
        (Activity.analyze
           ~func:{ nf with body = body_stmts }
           ~independents ~dependents:[ ret_var ])
  in
  let is_active v =
    match activity with None -> true | Some a -> Activity.active a v
  in

  (* Adjoint naming. *)
  let adj_tbl : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let float_params, float_array_params =
    List.fold_left
      (fun (fs, fas) p ->
        match p.pty with
        | Tscalar (Sflt _) -> (p.pname :: fs, fas)
        | Tarr (Sflt _) -> (fs, p.pname :: fas)
        | Tscalar Sint | Tarr Sint -> (fs, fas))
      ([], []) nf.params
  in
  let float_params = List.rev float_params
  and float_array_params = List.rev float_array_params in
  List.iter
    (fun p -> Hashtbl.replace adj_tbl p (fresh ("_d_" ^ p)))
    (float_params @ float_array_params);
  let float_locals, float_array_locals =
    List.fold_left
      (fun (fs, fas) (n, dty) ->
        match dty with
        | Dscalar (Sflt _) -> (n :: fs, fas)
        | Darr (Sflt _, _) -> (fs, n :: fas)
        | Dscalar Sint | Darr (Sint, _) -> (fs, fas))
      ([], []) local_decls
  in
  let float_locals = List.rev float_locals
  and float_array_locals = List.rev float_array_locals in
  List.iter
    (fun v -> Hashtbl.replace adj_tbl v (fresh ("_d_" ^ v)))
    (float_locals @ float_array_locals @ [ ret_var ]);
  let adj v =
    match Hashtbl.find_opt adj_tbl v with
    | Some a -> a
    | None -> err "internal: no adjoint for %S" v
  in
  let adj_lvalue = function
    | Lvar v -> Lvar (adj v)
    | Lidx (a, i) -> Lidx (adj a, i)
  in
  let adj_of_lv = function
    | Lvar v -> Var (adj v)
    | Lidx (a, i) -> Idx (adj a, i)
  in

  let info =
    {
      float_scalars = float_params @ float_locals @ [ ret_var ];
      float_arrays = float_array_params @ float_array_locals;
      ret_var;
      adjoint_of = adj;
      fresh;
      lookup_ty = (fun v -> Hashtbl.find_opt var_tys v);
    }
  in

  (* Adjoint accumulation for the right-hand side of an assignment:
     emits [d_r = d_r + seed] for every float reference in [e]. *)
  let rec accumulate e seed acc =
    match e with
    | Fconst _ | Iconst _ -> acc
    | Var x ->
        if is_float_base x && is_active x then
          Assign (Lvar (adj x), add (Var (adj x)) seed) :: acc
        else acc
    | Idx (a, i) ->
        if is_float_base a && is_active a then
          Assign (Lidx (adj a, i), add (Idx (adj a, i)) seed) :: acc
        else acc
    | Unop (Neg, u) -> accumulate u (neg seed) acc
    | Unop (Not, _) -> acc
    | Binop (Add, a, b) -> accumulate a seed (accumulate b seed acc)
    | Binop (Sub, a, b) -> accumulate a seed (accumulate b (neg seed) acc)
    | Binop (Mul, a, b) ->
        accumulate a (seed *: b) (accumulate b (seed *: a) acc)
    | Binop (Div, a, b) ->
        accumulate a (seed /: b)
          (accumulate b (neg ((seed *: a) /: (b *: b))) acc)
    | Binop ((Mod | Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> acc
    | Call (cname, args) -> (
        match Deriv.find deriv cname with
        | Some rule ->
            List.fold_left
              (fun acc (arg, new_seed) -> accumulate arg (simp new_seed) acc)
              acc
              (rule ~args ~seed)
        | None ->
            err
              "no derivative rule for intrinsic %S (register one in Deriv)"
              cname)
  in

  (* Generated bookkeeping integers, declared once at the top. *)
  let gen_int_decls = ref [] in
  let gen_int base =
    let n = fresh base in
    gen_int_decls := n :: !gen_int_decls;
    n
  in

  let lv_is_float = function
    | Lvar v | Lidx (v, _) -> (
        match Hashtbl.find_opt var_tys v with
        | Some (Tscalar (Sflt _)) | Some (Tarr (Sflt _)) -> true
        | _ -> false)
  in

  let rec rev_stmts loops stmts =
    let pairs = List.map (rev_stmt loops) stmts in
    ( List.concat_map fst pairs,
      List.concat_map snd (List.rev pairs) )

  and rev_stmt loops s =
    match s with
    | Assign (lv, e) when lv_is_float lv ->
        let base = lvalue_base lv in
        let fwd = [ Push lv; Assign (lv, e) ] in
        if not (is_active base) then (fwd, [ Pop lv ])
        else begin
          let t = fresh "_t" and v = fresh "_v" in
          let ctx =
            {
              lhs = lv;
              lhs_base = base;
              rhs = e;
              adjoint_var = t;
              value_var = v;
              enclosing_loops = loops;
              info;
            }
          in
          let bwd =
            [
              Decl { name = t; dty = Dscalar f64s; init = Some (adj_of_lv lv) };
              Decl { name = v; dty = Dscalar f64s; init = Some (lv_expr lv) };
              Pop lv;
              Assign (adj_lvalue lv, Fconst 0.);
            ]
            @ accumulate e (Var t) []
            @ hooks.on_assign ctx
          in
          (fwd, bwd)
        end
    | Assign (lv, _) -> ([ Push lv; s ], [ Pop lv ])
    | If (c, th, el) ->
        let cvar = gen_int "_cond" in
        let fth, bth = rev_stmts loops th in
        let fel, bel = rev_stmts loops el in
        ( [
            Assign (Lvar cvar, c);
            If (Var cvar, fth, fel);
            Push (Lvar cvar);
          ],
          [ Pop (Lvar cvar); If (Var cvar, bth, bel) ] )
    | For { var; lo; hi; down; body } ->
        let lo_v = gen_int "_lo" and hi_v = gen_int "_hi" in
        let fb, bb = rev_stmts (var :: loops) body in
        ( [
            Assign (Lvar lo_v, lo);
            Assign (Lvar hi_v, hi);
            For { var; lo = Var lo_v; hi = Var hi_v; down; body = fb };
            Push (Lvar lo_v);
            Push (Lvar hi_v);
          ],
          [
            Pop (Lvar hi_v);
            Pop (Lvar lo_v);
            For { var; lo = Var lo_v; hi = Var hi_v; down = not down; body = bb };
          ] )
    | While (c, body) ->
        let cnt = gen_int "_cnt" in
        let replay = fresh "_replay" in
        let fb, bb = rev_stmts (replay :: loops) body in
        ( [
            Assign (Lvar cnt, Iconst 0);
            While (c, fb @ [ Assign (Lvar cnt, Binop (Add, Var cnt, Iconst 1)) ]);
            Push (Lvar cnt);
          ],
          [
            Pop (Lvar cnt);
            For
              {
                var = replay;
                lo = Iconst 0;
                hi = Var cnt;
                down = false;
                body = bb;
              };
          ] )
    | Call_stmt _ -> ([ s ], [])
    | Decl _ | Return _ | Push _ | Pop _ -> assert false
  in

  let fwd, bwd = rev_stmts [] body_stmts in

  let params =
    nf.params
    @ List.filter_map
        (fun p ->
          match p.pty with
          | Tscalar (Sflt _) ->
              Some { pname = adj p.pname; pty = f64; pmode = Out }
          | Tarr (Sflt _) ->
              Some { pname = adj p.pname; pty = Tarr f64s; pmode = Out }
          | Tscalar Sint | Tarr Sint -> None)
        nf.params
    @ hooks.extra_params
  in
  let local_decl_stmts =
    List.map (fun (n, dty) -> Decl { name = n; dty; init = None }) local_decls
  in
  let gen_decl_stmts =
    List.rev_map
      (fun n -> Decl { name = n; dty = Dscalar Sint; init = None })
      !gen_int_decls
  in
  let adjoint_decl_stmts =
    List.map
      (fun v -> Decl { name = adj v; dty = Dscalar f64s; init = None })
      (float_locals @ [ ret_var ])
    @ List.filter_map
        (fun (n, dty) ->
          match dty with
          | Darr (Sflt _, size) ->
              Some (Decl { name = adj n; dty = Darr (f64s, size); init = None })
          | Dscalar _ | Darr (Sint, _) -> None)
        local_decls
  in
  let body =
    local_decl_stmts
    @ [ Decl { name = ret_var; dty = Dscalar f64s; init = None } ]
    @ gen_decl_stmts @ adjoint_decl_stmts
    @ hooks.prologue info
    @ fwd
    @ [ Assign (Lvar (adj ret_var), Fconst 1.) ]
    @ bwd
    @ hooks.epilogue info
  in
  { fname = grad_name ~suffix name; params; ret = None; body }
