(** Reverse-mode (adjoint) source transformation over MiniFP — the Clad
    substrate of this reproduction.

    [differentiate prog name] builds a new function [name_grad] that
    computes the gradient of [name] with respect to every float
    parameter, following the store-all scheme of the paper's Fig. 2: the
    forward sweep re-runs the original statements, pushing every
    overwritten location (plus loop bounds, branch conditions, and while
    trip counts) on a value stack; the backward sweep pops to restore
    state while accumulating adjoints statement by statement.

    The signature of the generated function is
    [name_grad(<original params>, out _d_<p> : f64 ...,
               out _d_<a> : f64[] ..., <extra hook params>) : void]
    with one derivative output per float parameter, in parameter order
    (paper Listing 1). Callers must zero the derivative outputs.

    {b The hook seam.} CHEF-FP attaches to adjoint generation exactly
    here: [hooks.on_assign] fires for every differentiated assignment
    with the adjoint and assigned value captured in fresh temporaries,
    and whatever statements it returns are spliced into the backward
    sweep (the paper's [AssignError], rule S2). [prologue]/[epilogue]
    bracket the body ([FinalizeEE], rule S1). *)

open Cheffp_ir

exception Error of string

(** Facts about the function being differentiated, offered to hook
    builders: normalized local declarations, parameter names, and the
    adjoint-variable naming. *)
type info = {
  float_scalars : string list;
      (** every differentiable scalar: float params, float locals, and
          the synthetic return variable, in declaration order *)
  float_arrays : string list;  (** float array params and locals *)
  ret_var : string;  (** synthetic variable holding the return value *)
  adjoint_of : string -> string;
      (** name of the adjoint variable of a differentiable variable *)
  fresh : string -> string;  (** generate a fresh variable name *)
  lookup_ty : string -> Ast.ty option;
}

(** Context for one differentiated assignment, passed to [on_assign]. *)
type hook_ctx = {
  lhs : Ast.lvalue;  (** the assigned location, e.g. [x] or [a[i]] *)
  lhs_base : string;  (** source-level variable name for attribution *)
  rhs : Ast.expr;  (** the assigned expression *)
  adjoint_var : string;
      (** temp holding d(lhs) at this assignment, before redistribution *)
  value_var : string;  (** temp holding the value the assignment produced *)
  enclosing_loops : string list;
      (** loop counters in scope, innermost first; during the backward
          sweep each counter replays its forward values *)
  info : info;
}

type hooks = {
  extra_params : Ast.param list;
  prologue : info -> Ast.stmt list;
  on_assign : hook_ctx -> Ast.stmt list;
  epilogue : info -> Ast.stmt list;
}

val no_hooks : hooks

val differentiate :
  ?deriv:Deriv.t ->
  ?hooks:hooks ->
  ?use_activity:bool ->
  ?suffix:string ->
  Ast.program ->
  string ->
  Ast.func
(** Requirements on the target function: float return with the [return]
    as the final statement (and nowhere else), parameters all [In], no
    [push]/[pop] in the body. User calls are inlined first; intrinsic
    calls need a {!Deriv} rule. [use_activity] (default [false]) skips
    adjoint propagation for provably-inactive assignments; results are
    unchanged (tested). [suffix] defaults to ["_grad"].
    @raise Error when the function violates the requirements. *)

val grad_name : ?suffix:string -> string -> string
(** Name of the generated function: [name ^ suffix]. *)

val derivative_params : Ast.func -> Ast.param list
(** The derivative output parameters [differentiate] appends for a given
    source function, in order (before any hook extras). *)
