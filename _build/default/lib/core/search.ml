open Cheffp_ir
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp
module Cost = Cheffp_precision.Cost

type outcome = {
  demoted : string list;
  executions : int;
  evaluation : Tuner.evaluation;
  threshold : float;
}

let copy_args args =
  List.map
    (function
      | Interp.Afarr a -> Interp.Afarr (Array.copy a)
      | Interp.Aiarr a -> Interp.Aiarr (Array.copy a)
      | (Interp.Aint _ | Interp.Aflt _) as x -> x)
    args

let tune ?(target = Fp.F32) ?mode ?builtins ~prog ~func ~args ~threshold () =
  let executions = ref 0 in
  let run config =
    incr executions;
    let compiled = Compile.compile ?builtins ?mode ~config ~prog ~func () in
    Compile.run_float compiled (copy_args args)
  in
  let reference = run Config.double in
  let error_of vars =
    let config = Config.demote_all Config.double vars target in
    Float.abs (run config -. reference)
  in
  let candidates = Tuner.float_variables (Ast.func_exn prog func) in
  let chosen =
    if error_of candidates <= threshold then candidates
    else begin
      (* Individual probing, then greedy growth with validation. *)
      let individual =
        List.map (fun v -> (v, error_of [ v ])) candidates
        |> List.filter (fun (_, e) -> e <= threshold)
        |> List.sort (fun (_, a) (_, b) -> compare a b)
      in
      List.fold_left
        (fun chosen (v, _) ->
          let trial = chosen @ [ v ] in
          if error_of trial <= threshold then trial else chosen)
        [] individual
    end
  in
  let config = Config.demote_all Config.double chosen target in
  let evaluation = Tuner.evaluate ?builtins ?mode ~prog ~func ~args config in
  { demoted = chosen; executions = !executions; evaluation; threshold }
