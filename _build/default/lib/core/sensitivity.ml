let normalized records =
  let n =
    List.fold_left
      (fun acc (_, l) ->
        List.fold_left (fun acc (i, _) -> max acc (i + 1)) acc l)
      0 records
  in
  let series =
    List.map
      (fun (name, l) ->
        let a = Array.make n 0. in
        List.iter (fun (i, v) -> if i >= 0 && i < n then a.(i) <- a.(i) +. v) l;
        (name, a))
      records
  in
  let global_max =
    List.fold_left
      (fun acc (_, a) -> Array.fold_left Float.max acc a)
      0. series
  in
  let series =
    if global_max > 0. then
      List.map (fun (name, a) -> (name, Array.map (fun v -> v /. global_max) a)) series
    else series
  in
  (n, series)

let below_threshold_after series ~threshold =
  let n = match series with (_, a) :: _ -> Array.length a | [] -> 0 in
  let ok_from k =
    List.for_all
      (fun (_, a) ->
        let rec go i = i >= n || (a.(i) < threshold && go (i + 1)) in
        go k)
      series
  in
  let rec find k = if k >= n then n else if ok_from k then k else find (k + 1) in
  find 0

let shades = " .:-=+*#%@"

let heatmap ?(cols = 72) series =
  let n = match series with (_, a) :: _ -> Array.length a | [] -> 0 in
  if n = 0 then "(empty sensitivity profile)\n"
  else begin
    let cols = min cols n in
    let bucket a c =
      (* max over the iterations mapped to column c *)
      let lo = c * n / cols and hi = max (((c + 1) * n / cols) - 1) (c * n / cols) in
      let m = ref 0. in
      for i = lo to min hi (n - 1) do
        m := Float.max !m a.(i)
      done;
      !m
    in
    let name_w =
      List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 series
    in
    let buf = Buffer.create 256 in
    List.iter
      (fun (name, a) ->
        Buffer.add_string buf (Printf.sprintf "%*s |" name_w name);
        for c = 0 to cols - 1 do
          let v = bucket a c in
          let idx =
            min
              (String.length shades - 1)
              (int_of_float (v *. float_of_int (String.length shades - 1)))
          in
          Buffer.add_char buf shades.[idx]
        done;
        Buffer.add_string buf "|\n")
      series;
    Buffer.add_string buf
      (Printf.sprintf "%*s  iterations 0..%d (bucketed into %d columns)\n"
         name_w "" (n - 1) cols);
    Buffer.contents buf
  end

let split_cutoff ~records ~vars ~eps ~budget ~max_iter =
  let vars = List.map String.lowercase_ascii vars in
  let tracked =
    List.filter
      (fun (v, _) -> List.mem (String.lowercase_ascii v) vars)
      records
  in
  let tail_raw c =
    List.fold_left
      (fun acc (_, l) ->
        List.fold_left
          (fun acc (i, s) -> if i >= c then acc +. s else acc)
          acc l)
      0. tracked
  in
  let rec find c =
    if c > max_iter then max_iter
    else if eps *. tail_raw c <= budget then c
    else find (c + 1)
  in
  find 1
