(** Sensitivity-profile utilities (paper Fig. 9).

    {!Estimate} can record per-loop-iteration sensitivities
    [|value * adjoint|] for every variable. This module turns those
    sparse records into dense, globally-normalized series and renders
    them as a text heatmap like the paper's HPCCG variable heatmap. *)

val normalized :
  (string * (int * float) list) list -> int * (string * float array) list
(** [(n, series)] where [n] is one past the largest iteration index and
    each variable's array has length [n], scaled so the global maximum
    is 1 (all-zero input stays zero). *)

val below_threshold_after :
  (string * float array) list -> threshold:float -> int
(** First iteration index from which every variable's normalized
    sensitivity stays below [threshold] (used to split the HPCCG loop
    into a high-precision prefix and a low-precision tail). Returns the
    series length if the condition never holds from any point. *)

val heatmap : ?cols:int -> (string * float array) list -> string
(** Text heatmap: one row per variable, iterations bucketed into at most
    [cols] (default 72) columns, intensity rendered with " .:-=+*#%@". *)

val split_cutoff :
  records:(string * (int * float) list) list ->
  vars:string list ->
  eps:float ->
  budget:float ->
  max_iter:int ->
  int
(** Earliest iteration [c] such that running iterations [>= c] with the
    named variables demoted keeps the first-order error estimate
    [eps * sum of their sensitivities at iterations >= c] within
    [budget]. Returns [max_iter] when no split qualifies (variable names
    are matched case-insensitively). Drives the paper's HPCCG split-loop
    rewrite. *)
