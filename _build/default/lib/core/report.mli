(** Human-readable rendering of analysis results (shared by the CLI and
    the examples). *)

val estimate : Estimate.report -> string
(** Total error, gradients, per-variable attribution, observed ranges
    when present, and the memory account — as an ASCII block. *)

val tuning : Tuner.outcome -> string
(** Contributions (annotated with demote/veto decisions), the chosen
    configuration, and its validation. *)

val search : Search.outcome -> string
