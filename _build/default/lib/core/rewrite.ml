open Cheffp_ir
open Ast
module Config = Cheffp_precision.Config

let retype_scalar config name = function
  | Sint -> Sint
  | Sflt _ as s -> Sflt (Interp.effective_format config s name)

let apply_config config f =
  let params =
    List.map
      (fun p ->
        let pty =
          match p.pty with
          | Tscalar s -> Tscalar (retype_scalar config p.pname s)
          | Tarr s -> Tarr (retype_scalar config p.pname s)
        in
        { p with pty })
      f.params
  in
  let rec stmt = function
    | Decl ({ name; dty; _ } as d) ->
        let dty =
          match dty with
          | Dscalar s -> Dscalar (retype_scalar config name s)
          | Darr (s, size) -> Darr (retype_scalar config name s, size)
        in
        Decl { d with dty }
    | If (c, a, b) -> If (c, List.map stmt a, List.map stmt b)
    | For l -> For { l with body = List.map stmt l.body }
    | While (c, body) -> While (c, List.map stmt body)
    | (Assign _ | Return _ | Call_stmt _ | Push _ | Pop _) as s -> s
  in
  { f with params; body = List.map stmt f.body }

let of_outcome prog ~func (o : Tuner.outcome) =
  let f = func_exn prog func in
  let rewritten = apply_config o.Tuner.evaluation.Tuner.config f in
  { rewritten with fname = func ^ "_mixed" }
