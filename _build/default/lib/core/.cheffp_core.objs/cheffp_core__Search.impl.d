lib/core/search.ml: Array Ast Cheffp_ir Cheffp_precision Compile Float Interp List Tuner
