lib/core/tuner.mli: Ast Builtins Cheffp_ir Cheffp_precision Interp Model
