lib/core/tuner.ml: Array Ast Cheffp_ir Cheffp_precision Compile Estimate Float Interp List Model Option
