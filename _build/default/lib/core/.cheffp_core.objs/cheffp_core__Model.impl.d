lib/core/model.ml: Array Ast Builtins Cheffp_ir Cheffp_precision Float Hashtbl List Printf
