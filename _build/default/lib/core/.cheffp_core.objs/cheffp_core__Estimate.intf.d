lib/core/estimate.mli: Ast Builtins Cheffp_ad Cheffp_ir Interp Model
