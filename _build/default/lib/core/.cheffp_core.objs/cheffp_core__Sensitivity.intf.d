lib/core/sensitivity.mli:
