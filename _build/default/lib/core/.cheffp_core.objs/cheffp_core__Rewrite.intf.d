lib/core/rewrite.mli: Ast Cheffp_ir Cheffp_precision Tuner
