lib/core/rewrite.ml: Ast Cheffp_ir Cheffp_precision Interp List Tuner
