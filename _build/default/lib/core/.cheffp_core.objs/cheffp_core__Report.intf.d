lib/core/report.mli: Estimate Search Tuner
