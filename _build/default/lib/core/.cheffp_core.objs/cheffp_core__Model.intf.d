lib/core/model.mli: Ast Builtins Cheffp_ir Cheffp_precision
