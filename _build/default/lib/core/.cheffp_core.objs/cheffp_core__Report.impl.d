lib/core/report.ml: Buffer Cheffp_precision Cheffp_util Estimate List Printf Search String Tuner
