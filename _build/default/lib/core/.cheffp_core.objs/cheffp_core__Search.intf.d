lib/core/search.mli: Ast Builtins Cheffp_ir Cheffp_precision Interp Tuner
