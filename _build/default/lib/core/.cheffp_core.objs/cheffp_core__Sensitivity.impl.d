lib/core/sensitivity.ml: Array Buffer Float List Printf String
