lib/core/estimate.ml: Array Ast Builtins Cheffp_ad Cheffp_ir Cheffp_precision Compile Float Format Hashtbl Interp List Model Optimize Pp Typecheck
