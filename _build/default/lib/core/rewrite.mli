(** Automatic mixed-precision source rewriting.

    The paper lists this as a limitation: "Currently, we manually rewrite
    the source code to implement the mixed precision configurations
    suggested by CHEF-FP" (§V-B, pointing at Typeforge for the future).
    Owning the AST makes it a transformation: {!apply_config} changes the
    declared storage type of every configured variable — parameters and
    locals, scalars and arrays — producing a standalone mixed-precision
    program that needs no configuration to run.

    The rewrite is exact by construction: executing the rewritten
    function under the all-double configuration is bit-identical to
    executing the original under [config] (declared narrow types and
    configuration overrides use the same effective-format rule; tested). *)

open Cheffp_ir

val apply_config : Cheffp_precision.Config.t -> Ast.func -> Ast.func
(** Retype every float variable to its effective format under [config].
    Integers and the return type are untouched. *)

val of_outcome :
  Ast.program -> func:string -> Tuner.outcome -> Ast.func
(** Convenience: rewrite the tuned function with the configuration the
    tuner validated, renaming it [<name>_mixed]. *)
