type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 8) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length t = t.len
let capacity t = Array.length t.data
let is_empty t = t.len = 0

let ensure t n =
  if n > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Growable.pop: empty";
  t.len <- t.len - 1;
  let x = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  x

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Growable: index %d out of bounds [0,%d)" i t.len)

let get t i = check t i; t.data.(i)
let set t i x = check t i; t.data.(i) <- x

let top t =
  if t.len = 0 then invalid_arg "Growable.top: empty";
  t.data.(t.len - 1)

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))
let to_array t = Array.sub t.data 0 t.len

module Float = struct
  type t = {
    mutable data : float array;
    mutable len : int;
    mutable peak : int;
  }

  let create ?(capacity = 16) () =
    { data = Array.make (max capacity 1) 0.; len = 0; peak = 0 }

  let length t = t.len
  let is_empty t = t.len = 0
  let peak_length t = t.peak

  let ensure t n =
    if n > Array.length t.data then begin
      let cap = ref (Array.length t.data) in
      while !cap < n do
        cap := !cap * 2
      done;
      let data = Array.make !cap 0. in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end

  let push t x =
    ensure t (t.len + 1);
    t.data.(t.len) <- x;
    t.len <- t.len + 1;
    if t.len > t.peak then t.peak <- t.len

  let pop t =
    if t.len = 0 then invalid_arg "Growable.Float.pop: empty";
    t.len <- t.len - 1;
    t.data.(t.len)

  let check t i =
    if i < 0 || i >= t.len then
      invalid_arg
        (Printf.sprintf "Growable.Float: index %d out of bounds [0,%d)" i t.len)

  let get t i = check t i; t.data.(i)
  let set t i x = check t i; t.data.(i) <- x

  let top t =
    if t.len = 0 then invalid_arg "Growable.Float.top: empty";
    t.data.(t.len - 1)

  let clear t =
    t.len <- 0;
    t.peak <- 0
end
