let sum a =
  let total = ref 0. and comp = ref 0. in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    a;
  !total

let mean a = if Array.length a = 0 then 0. else sum a /. float_of_int (Array.length a)

let max a =
  if Array.length a = 0 then invalid_arg "Stats.max: empty";
  Array.fold_left Float.max a.(0) a

let min a =
  if Array.length a = 0 then invalid_arg "Stats.min: empty";
  Array.fold_left Float.min a.(0) a

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let acc = Array.map (fun x -> (x -. m) *. (x -. m)) a in
    sqrt (sum acc /. float_of_int n)
  end

let sorted a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let median a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.median: empty";
  let b = sorted a in
  if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let b = sorted a in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  b.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let geomean a =
  if Array.length a = 0 then invalid_arg "Stats.geomean: empty";
  let acc =
    Array.map
      (fun x ->
        if x <= 0. then invalid_arg "Stats.geomean: non-positive element";
        log x)
      a
  in
  exp (mean acc)

let abs_diffs a b =
  if Array.length a <> Array.length b then
    invalid_arg "Stats.abs_diffs: length mismatch";
  Array.map2 (fun x y -> Float.abs (x -. y)) a b
