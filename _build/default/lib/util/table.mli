(** ASCII table rendering for the benchmark harness reports. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the table out with box-drawing rules.
    [aligns] defaults to left for the first column and right elsewhere.
    Rows shorter than the header are padded with empty cells. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit
(** [render] followed by printing to stdout with a trailing newline. *)

val fe : float -> string
(** Scientific notation with two fractional digits, e.g. ["3.24e-06"]. *)

val ff : float -> string
(** Fixed-point with two fractional digits, e.g. ["2.25"]. *)
