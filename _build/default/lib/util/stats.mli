(** Summary statistics over float sequences, with compensated summation. *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val max : float array -> float
(** Largest element. @raise Invalid_argument on the empty array. *)

val min : float array -> float
(** Smallest element. @raise Invalid_argument on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 for arrays shorter than 2. *)

val median : float array -> float
(** @raise Invalid_argument on the empty array. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [0,100], nearest-rank on a sorted copy. *)

val geomean : float array -> float
(** Geometric mean of positive values.
    @raise Invalid_argument if empty or any element is non-positive. *)

val abs_diffs : float array -> float array -> float array
(** Elementwise absolute differences.
    @raise Invalid_argument on length mismatch. *)
