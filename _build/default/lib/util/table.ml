type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?aligns ~header rows =
  let ncols = List.length header in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> List.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let line ch =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) ch) widths) ^ "+"
  in
  let format_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let w = List.nth widths i and a = List.nth aligns i in
          " " ^ pad a w cell ^ " ")
        row
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (format_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=');
  List.iter
    (fun row ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (format_row row))
    rows;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '-');
  Buffer.contents buf

let print ?aligns ~header rows = print_endline (render ?aligns ~header rows)
let fe x = Printf.sprintf "%.2e" x
let ff x = Printf.sprintf "%.2f" x
