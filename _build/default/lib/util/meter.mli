(** Deterministic resource accounting for the analysis-cost experiments.

    The paper measures analysis wall time (Google benchmark) and peak RSS
    (GNU time). Here wall time is measured directly and "peak memory" is
    accounted deterministically: each analysis backend reports the bytes
    of its dominant data structures (tape nodes, value stacks, adjoint
    storage) through a meter, which tracks the high-water mark. *)

type t

val create : unit -> t

val alloc : t -> int -> unit
(** Record [n] live bytes coming into existence. *)

val free : t -> int -> unit
(** Record [n] live bytes released. Never drives the counter negative. *)

val live_bytes : t -> int
val peak_bytes : t -> int
val reset : t -> unit

exception Out_of_memory_budget of { requested : int; budget : int }

val set_budget : t -> int option -> unit
(** With a budget set, an [alloc] pushing the live count past it raises
    {!Out_of_memory_budget}: used to emulate the paper's ADAPT OOM points. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with elapsed wall seconds. *)

val bytes_pp : int -> string
(** Human-readable byte count, e.g. ["1.50 MB"]. *)
