(** Deterministic pseudo-random number generation (SplitMix64).

    All workload generators in this project draw from this module so that
    every experiment is bit-reproducible across runs and machines. *)

type t

val create : int64 -> t
(** [create seed] makes an independent generator. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next raw 64-bit output of the SplitMix64 sequence. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform draw from [lo, hi). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal draw via Box-Muller. *)

val bool : t -> bool

val split : t -> t
(** Derive an independent generator; advances [t]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
