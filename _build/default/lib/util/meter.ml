type t = {
  mutable live : int;
  mutable peak : int;
  mutable budget : int option;
}

exception Out_of_memory_budget of { requested : int; budget : int }

let create () = { live = 0; peak = 0; budget = None }

let alloc t n =
  (match t.budget with
  | Some b when t.live + n > b ->
      raise (Out_of_memory_budget { requested = t.live + n; budget = b })
  | Some _ | None -> ());
  t.live <- t.live + n;
  if t.live > t.peak then t.peak <- t.live

let free t n = t.live <- max 0 (t.live - n)
let live_bytes t = t.live
let peak_bytes t = t.peak

let reset t =
  t.live <- 0;
  t.peak <- 0

let set_budget t b = t.budget <- b

let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let bytes_pp n =
  let f = float_of_int n in
  if f >= 1e9 then Printf.sprintf "%.2f GB" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2f MB" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.2f kB" (f /. 1e3)
  else Printf.sprintf "%d B" n
