(** Growable (dynamic) arrays.

    The standard library gains [Dynarray] only in OCaml 5.2; this module
    provides the subset needed by the tape structures in this project,
    plus a float-specialised variant backed by an unboxed [float array]. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty growable array. [dummy] fills
    unused capacity and is never observable through the API. *)

val length : 'a t -> int
val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Append an element, growing the backing store geometrically. *)

val pop : 'a t -> 'a
(** Remove and return the last element. @raise Invalid_argument if empty. *)

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-bounds access. *)

val set : 'a t -> int -> 'a -> unit
val top : 'a t -> 'a
val is_empty : 'a t -> bool
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array

(** Unboxed float variant: same semantics, [float array] backing store. *)
module Float : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val push : t -> float -> unit
  val pop : t -> float
  val get : t -> int -> float
  val set : t -> int -> float -> unit
  val top : t -> float
  val is_empty : t -> bool
  val clear : t -> unit
  val peak_length : t -> int
  (** High-water mark of [length] since creation or the last [clear]:
      used for deterministic peak-memory accounting of value stacks. *)
end
