lib/util/growable.mli:
