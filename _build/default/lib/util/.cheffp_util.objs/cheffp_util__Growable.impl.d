lib/util/growable.ml: Array List Printf
