lib/util/rng.mli:
