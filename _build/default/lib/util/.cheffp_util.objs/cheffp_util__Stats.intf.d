lib/util/stats.mli:
