lib/util/meter.mli:
