lib/util/meter.ml: Printf Unix
