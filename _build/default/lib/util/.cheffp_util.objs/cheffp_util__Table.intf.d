lib/util/table.mli:
