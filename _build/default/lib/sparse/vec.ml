let dot x y =
  if Array.length x <> Array.length y then invalid_arg "Vec.dot: length mismatch";
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let axpy a x y =
  if Array.length x <> Array.length y then invalid_arg "Vec.axpy: length mismatch";
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let waxpby alpha x beta y w =
  let n = Array.length x in
  if Array.length y <> n || Array.length w <> n then
    invalid_arg "Vec.waxpby: length mismatch";
  for i = 0 to n - 1 do
    w.(i) <- (alpha *. x.(i)) +. (beta *. y.(i))
  done

let copy = Array.copy
let fill a v = Array.fill a 0 (Array.length a) v

let max_abs_diff x y =
  if Array.length x <> Array.length y then
    invalid_arg "Vec.max_abs_diff: length mismatch";
  let m = ref 0. in
  for i = 0 to Array.length x - 1 do
    m := Float.max !m (Float.abs (x.(i) -. y.(i)))
  done;
  !m
