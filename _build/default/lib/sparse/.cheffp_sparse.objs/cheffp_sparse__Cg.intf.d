lib/sparse/cg.mli: Csr
