lib/sparse/csr.mli:
