lib/sparse/vec.mli:
