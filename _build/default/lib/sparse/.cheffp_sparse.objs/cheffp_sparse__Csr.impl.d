lib/sparse/csr.ml: Array
