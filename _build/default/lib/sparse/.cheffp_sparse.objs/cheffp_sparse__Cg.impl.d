lib/sparse/cg.ml: Array Cheffp_util Csr Vec
