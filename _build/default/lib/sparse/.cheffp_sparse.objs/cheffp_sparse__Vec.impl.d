lib/sparse/vec.ml: Array Float
