(** Conjugate-gradient solver (the HPCCG main loop, Mantevo). *)

type stats = {
  iterations : int;
  residual : float;  (** final [sqrt(r.r)] *)
  normr_history : float array;  (** residual norm at each iteration *)
}

val solve :
  ?max_iter:int ->
  ?tolerance:float ->
  Csr.t ->
  b:float array ->
  x:float array ->
  stats
(** Solves [A x = b] starting from the given [x] (updated in place).
    Defaults: [max_iter = 150], [tolerance = 0.0] (run all iterations,
    like the HPCCG benchmark). *)
