(** Dense vector kernels for the HPCCG substrate. *)

val dot : float array -> float array -> float
(** @raise Invalid_argument on length mismatch. *)

val norm2 : float array -> float
val axpy : float -> float array -> float array -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val waxpby : float -> float array -> float -> float array -> float array -> unit
(** [waxpby alpha x beta y w] computes [w <- alpha*x + beta*y] (HPCCG's
    kernel; [w] may alias [x] or [y]). *)

val copy : float array -> float array
val fill : float array -> float -> unit
val max_abs_diff : float array -> float array -> float
