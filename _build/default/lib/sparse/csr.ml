type t = {
  n : int;
  row_ptr : int array;
  cols : int array;
  vals : float array;
}

let nnz t = t.row_ptr.(t.n)

let spmv t x y =
  if Array.length x <> t.n || Array.length y <> t.n then
    invalid_arg "Csr.spmv: dimension mismatch";
  for i = 0 to t.n - 1 do
    let acc = ref 0. in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc := !acc +. (t.vals.(k) *. x.(t.cols.(k)))
    done;
    y.(i) <- !acc
  done

let stencil27 ~nx ~ny ~nz =
  let n = nx * ny * nz in
  let row_ptr = Array.make (n + 1) 0 in
  (* First pass: count entries per row. *)
  let idx ix iy iz = (iz * nx * ny) + (iy * nx) + ix in
  let count = ref 0 in
  for iz = 0 to nz - 1 do
    for iy = 0 to ny - 1 do
      for ix = 0 to nx - 1 do
        let row = idx ix iy iz in
        let c = ref 0 in
        for dz = -1 to 1 do
          for dy = -1 to 1 do
            for dx = -1 to 1 do
              let jx = ix + dx and jy = iy + dy and jz = iz + dz in
              if jx >= 0 && jx < nx && jy >= 0 && jy < ny && jz >= 0 && jz < nz
              then incr c
            done
          done
        done;
        count := !count + !c;
        row_ptr.(row + 1) <- !c
      done
    done
  done;
  for i = 1 to n do
    row_ptr.(i) <- row_ptr.(i) + row_ptr.(i - 1)
  done;
  let cols = Array.make !count 0 in
  let vals = Array.make !count 0. in
  for iz = 0 to nz - 1 do
    for iy = 0 to ny - 1 do
      for ix = 0 to nx - 1 do
        let row = idx ix iy iz in
        let k = ref row_ptr.(row) in
        for dz = -1 to 1 do
          for dy = -1 to 1 do
            for dx = -1 to 1 do
              let jx = ix + dx and jy = iy + dy and jz = iz + dz in
              if jx >= 0 && jx < nx && jy >= 0 && jy < ny && jz >= 0 && jz < nz
              then begin
                let col = idx jx jy jz in
                cols.(!k) <- col;
                vals.(!k) <- (if col = row then 27.0 else -1.0);
                incr k
              end
            done
          done
        done
      done
    done
  done;
  let a = { n; row_ptr; cols; vals } in
  let xexact = Array.make n 1.0 in
  let b = Array.make n 0. in
  spmv a xexact b;
  (a, b, xexact)

let dense_of t =
  let d = Array.make_matrix t.n t.n 0. in
  for i = 0 to t.n - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      d.(i).(t.cols.(k)) <- d.(i).(t.cols.(k)) +. t.vals.(k)
    done
  done;
  d
