(** Compressed sparse row matrices and the HPCCG problem generator.

    HPCCG (Mantevo) builds a 27-point finite-difference stencil on an
    [nx * ny * nz] "3D chimney" domain: each row has 27.0 on the diagonal
    and -1.0 for each of the up-to-26 grid neighbours, with the exact
    right-hand side chosen so the solution is all ones. {!stencil27}
    reproduces that generator. *)

type t = {
  n : int;  (** square dimension *)
  row_ptr : int array;  (** length n+1 *)
  cols : int array;
  vals : float array;
}

val nnz : t -> int

val spmv : t -> float array -> float array -> unit
(** [spmv a x y] computes [y <- A x].
    @raise Invalid_argument on dimension mismatch. *)

val stencil27 : nx:int -> ny:int -> nz:int -> t * float array * float array
(** [(a, b, xexact)]: the HPCCG matrix, the right-hand side [b = A*1],
    and the exact solution (all ones). *)

val dense_of : t -> float array array
(** For tests on tiny matrices. *)
