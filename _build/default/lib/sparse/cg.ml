type stats = {
  iterations : int;
  residual : float;
  normr_history : float array;
}

let solve ?(max_iter = 150) ?(tolerance = 0.0) (a : Csr.t) ~b ~x =
  let n = a.Csr.n in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Cg.solve: dimension mismatch";
  let r = Array.make n 0. in
  let p = Array.copy x in
  let ap = Array.make n 0. in
  let history = Cheffp_util.Growable.Float.create () in
  (* r = b - A*p; p = x *)
  Csr.spmv a p ap;
  for i = 0 to n - 1 do
    r.(i) <- b.(i) -. ap.(i)
  done;
  (* HPCCG main loop structure (Mantevo HPCCG.cpp). *)
  let rtrans = ref (Vec.dot r r) in
  let normr = ref (sqrt !rtrans) in
  Cheffp_util.Growable.Float.push history !normr;
  let k = ref 1 in
  while !k <= max_iter && !normr > tolerance do
    if !k = 1 then Array.blit r 0 p 0 n
    else begin
      let oldrtrans = !rtrans in
      rtrans := Vec.dot r r;
      let beta = !rtrans /. oldrtrans in
      Vec.waxpby 1.0 r beta p p
    end;
    normr := sqrt !rtrans;
    Csr.spmv a p ap;
    let alpha = !rtrans /. Vec.dot p ap in
    Vec.axpy alpha p x;
    Vec.axpy (-.alpha) ap r;
    incr k;
    (* Refresh the residual norm so the loop guard sees the value the
       iteration just produced (an exact zero residual must stop the
       loop before the next alpha becomes 0/0). *)
    normr := sqrt (Vec.dot r r);
    Cheffp_util.Growable.Float.push history !normr
  done;
  let hist =
    Array.init (Cheffp_util.Growable.Float.length history) (fun i ->
        Cheffp_util.Growable.Float.get history i)
  in
  { iterations = !k - 1; residual = sqrt (Vec.dot r r); normr_history = hist }
