lib/fastapprox/fastapprox.ml: Array Ast Builtins Cheffp_ad Cheffp_ir Cheffp_precision Deriv Float Int32 List
