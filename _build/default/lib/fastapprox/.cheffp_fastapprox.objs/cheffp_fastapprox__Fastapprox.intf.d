lib/fastapprox/fastapprox.mli: Cheffp_ad Cheffp_ir
