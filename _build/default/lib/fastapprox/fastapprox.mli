(** Port of Paul Mineiro's FastApprox library (paper §IV-5, [21]).

    These are the float32 bit-manipulation approximations of
    transcendental functions that the Black-Scholes experiment swaps in
    for the C math library. The "fast" variants use a small rational
    correction; the "faster" variants are the raw exponent-field tricks.
    Inputs are treated as binary32 (the double input is rounded first),
    matching the original C semantics; the surrounding arithmetic runs
    in binary64, which is inconsequential next to the method error.

    Accuracy (typical relative error on moderate ranges): fast* ~ 1e-5,
    faster* ~ 1e-2. *)

val fastlog2 : float -> float
val fastlog : float -> float
val fastpow2 : float -> float
val fastexp : float -> float
val fastpow : float -> float -> float

val fastsqrt : float -> float
(** Via [fastpow x 0.5]. *)

val fastsin : float -> float
(** Argument in [-pi, pi]. *)

val fasterlog2 : float -> float
val fasterlog : float -> float
val fasterpow2 : float -> float
val fasterexp : float -> float

val register_builtins : Cheffp_ir.Builtins.t -> unit
(** Register every function above as an approximate MiniFP intrinsic
    (metered at the discounted approximate cost). *)

val register_derivatives : Cheffp_ad.Deriv.t -> unit
(** Give each approximate intrinsic the derivative rule of its exact
    counterpart — the standard smooth surrogate for AD through
    approximations. *)
