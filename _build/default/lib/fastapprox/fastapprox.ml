(* Bit-level helpers: interpret a value as IEEE binary32. *)
let bits x = Int32.bits_of_float x
let of_bits i = Int32.float_of_bits i

(* C's (float) y where y is the uint32 bit pattern: patterns of interest
   here have the sign bit clear, so Int32.to_float is exact enough. *)
let u32_to_float i =
  if Int32.compare i 0l >= 0 then Int32.to_float i
  else Int32.to_float i +. 4294967296.

let fastlog2 x =
  let vx_i = bits x in
  let mx_f =
    of_bits (Int32.logor (Int32.logand vx_i 0x007FFFFFl) 0x3f000000l)
  in
  let y = u32_to_float vx_i *. 1.1920928955078125e-7 in
  y -. 124.22551499 -. (1.498030302 *. mx_f)
  -. (1.72587999 /. (0.3520887068 +. mx_f))

let fastlog x = 0.69314718 *. fastlog2 x

let fastpow2 p =
  let offset = if p < 0. then 1.0 else 0.0 in
  let clipp = if p < -126. then -126.0 else p in
  let w = int_of_float clipp in
  let z = clipp -. float_of_int w +. offset in
  let v =
    Int32.of_float
      (8388608.0
      *. (clipp +. 121.2740575
         +. (27.7280233 /. (4.84252568 -. z))
         -. (1.49012907 *. z)))
  in
  of_bits v

let fastexp p = fastpow2 (1.442695040 *. p)
let fastpow x p = fastpow2 (p *. fastlog2 x)
let fastsqrt x = fastpow x 0.5

let fastsin x =
  let fouroverpi = 1.2732395447351627 in
  let fouroverpisq = 0.40528473456935109 in
  let q = 0.78444488374548933 in
  let p_i = bits 0.20363937680730309 in
  let r_i = bits 0.015124940802184233 in
  let s_i = bits (-0.0032225901625579573) in
  let vx_i = bits x in
  let sign = Int32.logand vx_i 0x80000000l in
  let absx = of_bits (Int32.logand vx_i 0x7FFFFFFFl) in
  let qpprox = (fouroverpi *. x) -. (fouroverpisq *. x *. absx) in
  let qpproxsq = qpprox *. qpprox in
  let p_f = of_bits (Int32.logor p_i sign) in
  let r_f = of_bits (Int32.logor r_i sign) in
  let s_f = of_bits (Int32.logxor s_i sign) in
  (q *. qpprox) +. (qpproxsq *. (p_f +. (qpproxsq *. (r_f +. (qpproxsq *. s_f)))))

let fasterlog2 x =
  let y = u32_to_float (bits x) in
  (y *. 1.1920928955078125e-7) -. 126.94269504

let fasterlog x = 0.69314718 *. fasterlog2 x

let fasterpow2 p =
  let clipp = if p < -126. then -126.0 else p in
  let v = Int32.of_float ((8388608.0 *. (clipp +. 126.94269504))) in
  of_bits v

let fasterexp p = fasterpow2 (1.442695040 *. p)

open Cheffp_ir

let unary_names =
  [
    ("fastlog2", fastlog2);
    ("fastlog", fastlog);
    ("fastpow2", fastpow2);
    ("fastexp", fastexp);
    ("fastsqrt", fastsqrt);
    ("fastsin", fastsin);
    ("fasterlog2", fasterlog2);
    ("fasterlog", fasterlog);
    ("fasterpow2", fasterpow2);
    ("fasterexp", fasterexp);
  ]

let register_builtins builtins =
  List.iter
    (fun (name, f) ->
      Builtins.register_float1 builtins name
        ~cls:Cheffp_precision.Cost.Transcendental ~approx:true f)
    unary_names;
  Builtins.register builtins "fastpow"
    {
      Builtins.args = [ Builtins.Kflt; Builtins.Kflt ];
      ret = Builtins.Kflt;
      cls = Cheffp_precision.Cost.Transcendental;
      approx = true;
    }
    (fun a -> Builtins.F (fastpow (Builtins.as_float a.(0)) (Builtins.as_float a.(1))))

let register_derivatives deriv =
  let open Cheffp_ad in
  List.iter
    (fun (approx, exact) -> Deriv.alias deriv approx exact)
    [
      ("fastlog2", "log2");
      ("fastlog", "log");
      ("fastexp", "exp");
      ("fastsqrt", "sqrt");
      ("fastsin", "sin");
      ("fasterlog2", "log2");
      ("fasterlog", "log");
      ("fasterexp", "exp");
      ("fastpow", "pow");
    ];
  (* pow2 has no exact default intrinsic; d/dx 2^x = ln 2 * 2^x. *)
  let pow2_rule ~args ~seed =
    match args with
    | [ u ] ->
        [
          ( u,
            Ast.Binop
              ( Ast.Mul,
                seed,
                Ast.Binop
                  ( Ast.Mul,
                    Ast.Fconst (Float.log 2.),
                    Ast.Call ("pow", [ Ast.Fconst 2.; u ]) ) ) );
        ]
    | _ -> invalid_arg "fastpow2 derivative: expects 1 argument"
  in
  Deriv.register deriv "fastpow2" pow2_rule;
  Deriv.register deriv "fasterpow2" pow2_rule
