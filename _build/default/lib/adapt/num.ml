(** Numeric abstraction for the dual-implementation benchmarks.

    Each paper benchmark is written once as a functor over [NUM] and then
    instantiated with {!Float_num} (the plain program, for baseline
    timing and mixed-precision ground truth) and with the ADAPT-style
    taped number of {!Adapt} (the operator-overloading AD baseline the
    paper compares against). [register] is where ADAPT's manual
    annotation cost shows up: the tool only attributes errors to
    variables the programmer explicitly names. *)

module type NUM = sig
  type t

  val of_float : float -> t
  val of_int : int -> t
  val to_float : t -> float

  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val neg : t -> t
  val sqrt : t -> t
  val exp : t -> t
  val log : t -> t
  val sin : t -> t
  val cos : t -> t
  val pow : t -> t -> t
  val fabs : t -> t

  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool

  val register : string -> t -> t
  (** Attribute the value to a named program variable for error
      accounting (identity for plain floats). *)

  val input : string -> float -> t
  (** Introduce a named independent input. *)
end

module Float_num : NUM with type t = float = struct
  type t = float

  let of_float x = x
  let of_int = float_of_int
  let to_float x = x
  let ( + ) = ( +. )
  let ( - ) = ( -. )
  let ( * ) = ( *. )
  let ( / ) = ( /. )
  let neg x = -.x
  let sqrt = Stdlib.sqrt
  let exp = Stdlib.exp
  let log = Stdlib.log
  let sin = Stdlib.sin
  let cos = Stdlib.cos
  let pow = ( ** )
  let fabs = Float.abs
  let ( < ) (a : float) b = a < b
  let ( <= ) (a : float) b = a <= b
  let ( > ) (a : float) b = a > b
  let ( >= ) (a : float) b = a >= b
  let register _ x = x
  let input _ x = x
end
