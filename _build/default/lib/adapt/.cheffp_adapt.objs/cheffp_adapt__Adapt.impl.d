lib/adapt/adapt.ml: Cheffp_precision Cheffp_util Float Hashtbl List Num Stdlib Tape
