lib/adapt/tape.ml: Array Cheffp_util Hashtbl List
