lib/adapt/tape.mli: Cheffp_util
