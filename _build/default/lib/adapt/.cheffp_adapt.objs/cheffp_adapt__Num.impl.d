lib/adapt/num.ml: Float Stdlib
