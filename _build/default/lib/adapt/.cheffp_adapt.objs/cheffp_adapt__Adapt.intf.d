lib/adapt/adapt.mli: Cheffp_precision Num Stdlib Tape
