type token =
  | IDENT of string
  | INT_LIT of int
  | FLOAT_LIT of float
  | KW of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | DOTDOT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | EQEQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | EOF

type t = { tok : token; line : int; col : int }

exception Error of string

let keywords =
  [ "func"; "var"; "if"; "else"; "for"; "in"; "while"; "return"; "out";
    "reversed"; "push"; "pop"; "void" ]

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT_LIT n -> Printf.sprintf "integer %d" n
  | FLOAT_LIT x -> Printf.sprintf "float %g" x
  | KW s -> Printf.sprintf "keyword %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | DOTDOT -> "'..'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | EQ -> "'='"
  | EQEQ -> "'=='"
  | NEQ -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | EOF -> "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let out = ref [] in
  let fail fmt =
    Format.kasprintf
      (fun s -> raise (Error (Printf.sprintf "line %d, col %d: %s" !line !col s)))
      fmt
  in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let advance () =
    (match src.[!pos] with
    | '\n' ->
        incr line;
        col := 1
    | _ -> incr col);
    incr pos
  in
  let emit tok ~line:l ~col:c = out := { tok; line = l; col = c } :: !out in
  while !pos < n do
    let c = src.[!pos] in
    let l = !line and co = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if is_digit c || (c = '.' && peek 1 <> Some '.' &&
                           match peek 1 with Some d -> is_digit d | None -> false)
    then begin
      let start = !pos in
      let is_float = ref false in
      while
        !pos < n
        && (is_digit src.[!pos]
           || (src.[!pos] = '.' && peek 1 <> Some '.')
           || src.[!pos] = 'e' || src.[!pos] = 'E'
           || ((src.[!pos] = '+' || src.[!pos] = '-')
              && !pos > start
              && (src.[!pos - 1] = 'e' || src.[!pos - 1] = 'E')))
      do
        (match src.[!pos] with
        | '.' | 'e' | 'E' -> is_float := true
        | _ -> ());
        advance ()
      done;
      let text = String.sub src start (!pos - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some x -> emit (FLOAT_LIT x) ~line:l ~col:co
        | None -> fail "malformed float literal %S" text
      else
        match int_of_string_opt text with
        | Some x -> emit (INT_LIT x) ~line:l ~col:co
        | None -> fail "malformed integer literal %S" text
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        advance ()
      done;
      let text = String.sub src start (!pos - start) in
      if List.mem text keywords then emit (KW text) ~line:l ~col:co
      else emit (IDENT text) ~line:l ~col:co
    end
    else begin
      let two tok = advance (); advance (); emit tok ~line:l ~col:co in
      let one tok = advance (); emit tok ~line:l ~col:co in
      match (c, peek 1) with
      | '.', Some '.' -> two DOTDOT
      | '=', Some '=' -> two EQEQ
      | '!', Some '=' -> two NEQ
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '&', Some '&' -> two ANDAND
      | '|', Some '|' -> two OROR
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ',', _ -> one COMMA
      | ';', _ -> one SEMI
      | ':', _ -> one COLON
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '=', _ -> one EQ
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '!', _ -> one BANG
      | _, _ -> fail "unexpected character %C" c
    end
  done;
  emit EOF ~line:!line ~col:!col;
  List.rev !out
