open Ast
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module Cost = Cheffp_precision.Cost
module Growable = Cheffp_util.Growable

exception Runtime_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type arg =
  | Aint of int
  | Aflt of float
  | Afarr of float array
  | Aiarr of int array

type result = {
  ret : Builtins.value option;
  outs : (string * Builtins.value) list;
  stack_peak_bytes : int;
}

let effective_format config scalar name =
  match scalar with
  | Sint -> Fp.F64
  | Sflt declared ->
      if Config.has_override config name then Config.format_of config name
      else if not (Fp.equal_format declared Fp.F64) then declared
      else Config.default_format config

(* ------------------------------------------------------------------ *)
(* Run-time environment                                               *)

type fcell = { mutable f : float; fmt : Fp.format }
type icell = { mutable i : int }
type farr = { a : float array; afmt : Fp.format }

type slot = Sf of fcell | Si of icell | Sfa of farr | Sia of int array

module Scope = struct
  type t = { mutable frames : (string, slot) Hashtbl.t list }

  let create () = { frames = [ Hashtbl.create 16 ] }
  let push t = t.frames <- Hashtbl.create 8 :: t.frames

  let pop t =
    match t.frames with
    | _ :: (_ :: _ as rest) -> t.frames <- rest
    | _ -> assert false

  let find t name =
    let rec go = function
      | [] -> fail "undeclared variable %S" name
      | frame :: rest -> (
          match Hashtbl.find_opt frame name with
          | Some s -> s
          | None -> go rest)
    in
    go t.frames

  let declare t name slot =
    match t.frames with
    | frame :: _ -> Hashtbl.replace frame name slot
    | [] -> assert false
end

type state = {
  prog : program;
  builtins : Builtins.t;
  config : Config.t;
  mode : Config.rounding_mode;
  counter : Cost.Counter.t option;
  fstack : Growable.Float.t;
  istack : int Growable.t;
  mutable ipeak : int;
  mutable fuel : int;  (* negative = unlimited *)
}

exception Return_exn of Builtins.value option

(* Values flowing through expression evaluation carry the format they are
   "stored in" so that Source-mode rounding can run each operation in the
   width its operands imply. Integers use [VI]. *)
type ev = VI of int | VF of float * Fp.format

let wider a b = if Fp.bits a >= Fp.bits b then a else b

let charge_op st fmt cls =
  match st.counter with
  | Some c -> Cost.Counter.charge_op c fmt cls
  | None -> ()

let charge_cast st =
  match st.counter with Some c -> Cost.Counter.charge_cast c | None -> ()

let charge_approx st cls =
  match st.counter with
  | Some c -> Cost.Counter.charge_approx c cls
  | None -> ()

let float_binop st op a fa b fb =
  let fmt = wider fa fb in
  if not (Fp.equal_format fa fb) then charge_cast st;
  let raw =
    match op with
    | Add -> a +. b
    | Sub -> a -. b
    | Mul -> a *. b
    | Div -> a /. b
    | Mod -> fail "%% applied to floats"
    | Eq | Ne | Lt | Le | Gt | Ge | And | Or -> assert false
  in
  match st.mode with
  | Config.Source ->
      let cls = match op with Div -> Cost.Division | _ -> Cost.Basic in
      charge_op st fmt cls;
      VF (Fp.round fmt raw, fmt)
  | Config.Extended ->
      let cls = match op with Div -> Cost.Division | _ -> Cost.Basic in
      charge_op st Fp.F64 cls;
      VF (raw, Fp.F64)

let bool_of b = if b then 1 else 0

let rec eval st scope e : ev =
  match e with
  | Fconst x -> VF (x, Fp.F64)
  | Iconst n -> VI n
  | Var v -> (
      match Scope.find scope v with
      | Sf c -> VF (c.f, c.fmt)
      | Si c -> VI c.i
      | Sfa _ | Sia _ -> fail "array %S used as a scalar" v)
  | Idx (a, i) -> (
      let i = eval_int st scope i in
      match Scope.find scope a with
      | Sfa { a = arr; afmt = fmt } ->
          if i < 0 || i >= Array.length arr then
            fail "index %d out of bounds for %S (length %d)" i a
              (Array.length arr);
          VF (arr.(i), fmt)
      | Sia arr ->
          if i < 0 || i >= Array.length arr then
            fail "index %d out of bounds for %S (length %d)" i a
              (Array.length arr);
          VI arr.(i)
      | Sf _ | Si _ -> fail "scalar %S indexed as an array" a)
  | Unop (Neg, e) -> (
      match eval st scope e with
      | VI n -> VI (-n)
      | VF (x, fmt) ->
          charge_op st
            (match st.mode with Config.Source -> fmt | Config.Extended -> Fp.F64)
            Cost.Basic;
          VF (-.x, fmt))
  | Unop (Not, e) -> VI (bool_of (eval_int st scope e = 0))
  | Binop (op, ea, eb) -> (
      let va = eval st scope ea in
      let vb = eval st scope eb in
      match (op, va, vb) with
      | (Add | Sub | Mul | Div | Mod), VI a, VI b -> (
          match op with
          | Add -> VI (a + b)
          | Sub -> VI (a - b)
          | Mul -> VI (a * b)
          | Div ->
              if b = 0 then fail "integer division by zero";
              VI (a / b)
          | Mod ->
              if b = 0 then fail "integer modulo by zero";
              VI (a mod b)
          | _ -> assert false)
      | (Add | Sub | Mul | Div), VF (a, fa), VF (b, fb) ->
          float_binop st op a fa b fb
      | (Eq | Ne | Lt | Le | Gt | Ge), VI a, VI b ->
          VI
            (bool_of
               (match op with
               | Eq -> a = b
               | Ne -> a <> b
               | Lt -> a < b
               | Le -> a <= b
               | Gt -> a > b
               | Ge -> a >= b
               | _ -> assert false))
      | (Eq | Ne | Lt | Le | Gt | Ge), VF (a, _), VF (b, _) ->
          VI
            (bool_of
               (match op with
               | Eq -> a = b
               | Ne -> a <> b
               | Lt -> a < b
               | Le -> a <= b
               | Gt -> a > b
               | Ge -> a >= b
               | _ -> assert false))
      | (And | Or), VI a, VI b ->
          VI
            (bool_of
               (match op with
               | And -> a <> 0 && b <> 0
               | Or -> a <> 0 || b <> 0
               | _ -> assert false))
      | _ ->
          fail "kind mismatch in %s" (Pp.expr_to_string (Binop (op, ea, eb))))
  | Call (name, args) -> (
      match Builtins.find st.builtins name with
      | Some (sg, impl) ->
          let evs = List.map (eval st scope) args in
          let widest =
            List.fold_left
              (fun acc ev ->
                match ev with VF (_, f) -> wider acc f | VI _ -> acc)
              (match st.mode with
              | Config.Source -> Fp.F16
              | Config.Extended -> Fp.F64)
              evs
          in
          let widest =
            (* A call with no float arguments is charged at F64. *)
            match
              List.exists (function VF _ -> true | VI _ -> false) evs
            with
            | true -> widest
            | false -> Fp.F64
          in
          let vs =
            List.map
              (function VI n -> Builtins.I n | VF (x, _) -> Builtins.F x)
              evs
          in
          if sg.Builtins.approx then charge_approx st sg.Builtins.cls
          else
            charge_op st
              (match st.mode with
              | Config.Source -> widest
              | Config.Extended -> Fp.F64)
              sg.Builtins.cls;
          (match impl (Array.of_list vs) with
          | Builtins.I n -> VI n
          | Builtins.F x -> (
              match st.mode with
              | Config.Source -> VF (Fp.round widest x, widest)
              | Config.Extended -> VF (x, Fp.F64)))
      | None -> (
          let f = func_exn st.prog name in
          match call_func st scope f args with
          | Some (Builtins.I n) -> VI n
          | Some (Builtins.F x) -> VF (x, Fp.F64)
          | None -> fail "void function %S used in an expression" name))

and eval_int st scope e =
  match eval st scope e with
  | VI n -> n
  | VF _ -> fail "expected an int, got a float in %s" (Pp.expr_to_string e)

and eval_float st scope e =
  match eval st scope e with
  | VF (x, fmt) -> (x, fmt)
  | VI _ -> fail "expected a float, got an int in %s" (Pp.expr_to_string e)

and store st scope lv ev =
  match (Scope.find scope (lvalue_base lv), lv, ev) with
  | Sf c, Lvar _, VF (x, fmt) ->
      if not (Fp.equal_format fmt c.fmt) then charge_cast st;
      c.f <- Fp.round c.fmt x
  | Si c, Lvar _, VI n -> c.i <- n
  | Sfa { a; afmt = fmt }, Lidx (name, ie), VF (x, vfmt) ->
      let i = eval_int st scope ie in
      if i < 0 || i >= Array.length a then
        fail "index %d out of bounds for %S (length %d)" i name (Array.length a);
      if not (Fp.equal_format vfmt fmt) then charge_cast st;
      a.(i) <- Fp.round fmt x
  | Sia a, Lidx (name, ie), VI n ->
      let i = eval_int st scope ie in
      if i < 0 || i >= Array.length a then
        fail "index %d out of bounds for %S (length %d)" i name (Array.length a);
      a.(i) <- n
  | _, _, _ ->
      fail "kind mismatch storing into %s" (Format.asprintf "%a" Pp.pp_lvalue lv)

and exec st scope stmt =
  if st.fuel = 0 then
    fail "fuel exhausted (infinite loop? raise the fuel limit)";
  if st.fuel > 0 then st.fuel <- st.fuel - 1;
  match stmt with
  | Decl { name; dty; init } -> (
      match dty with
      | Dscalar Sint ->
          let c = Si { i = 0 } in
          Scope.declare scope name c;
          Option.iter
            (fun e -> store st scope (Lvar name) (VI (eval_int st scope e)))
            init
      | Dscalar (Sflt _ as s) ->
          let fmt = effective_format st.config s name in
          Scope.declare scope name (Sf { f = 0.; fmt });
          Option.iter
            (fun e ->
              let x, vfmt = eval_float st scope e in
              store st scope (Lvar name) (VF (x, vfmt)))
            init
      | Darr (Sint, size) ->
          let n = eval_int st scope size in
          if n < 0 then fail "array %S has negative size %d" name n;
          Scope.declare scope name (Sia (Array.make n 0))
      | Darr ((Sflt _ as s), size) ->
          let n = eval_int st scope size in
          if n < 0 then fail "array %S has negative size %d" name n;
          let fmt = effective_format st.config s name in
          Scope.declare scope name (Sfa { a = Array.make n 0.; afmt = fmt }))
  | Assign (lv, e) -> store st scope lv (eval st scope e)
  | If (c, t, e) ->
      let branch = if eval_int st scope c <> 0 then t else e in
      exec_block st scope branch
  | For { var; lo; hi; down; body } ->
      let lo = eval_int st scope lo and hi = eval_int st scope hi in
      Scope.push scope;
      let cell = { i = 0 } in
      Scope.declare scope var (Si cell);
      if down then
        for i = hi - 1 downto lo do
          cell.i <- i;
          exec_block st scope body
        done
      else
        for i = lo to hi - 1 do
          cell.i <- i;
          exec_block st scope body
        done;
      Scope.pop scope
  | While (c, body) ->
      while eval_int st scope c <> 0 do
        exec_block st scope body
      done
  | Return None -> raise (Return_exn None)
  | Return (Some e) ->
      let v =
        match eval st scope e with
        | VI n -> Builtins.I n
        | VF (x, _) -> Builtins.F x
      in
      raise (Return_exn (Some v))
  | Call_stmt (name, args) -> (
      match Builtins.find st.builtins name with
      | Some _ -> ignore (eval st scope (Call (name, args)))
      | None ->
          let f = func_exn st.prog name in
          ignore (call_func st scope f args))
  | Push lv -> (
      match (Scope.find scope (lvalue_base lv), lv) with
      | Sf c, Lvar _ -> Growable.Float.push st.fstack c.f
      | Si c, Lvar _ ->
          Growable.push st.istack c.i;
          if Growable.length st.istack > st.ipeak then
            st.ipeak <- Growable.length st.istack
      | Sfa { a; afmt = _ }, Lidx (_, ie) ->
          Growable.Float.push st.fstack a.(eval_int st scope ie)
      | Sia a, Lidx (_, ie) ->
          Growable.push st.istack a.(eval_int st scope ie);
          if Growable.length st.istack > st.ipeak then
            st.ipeak <- Growable.length st.istack
      | _, _ -> fail "push: kind mismatch")
  | Pop lv -> (
      match (Scope.find scope (lvalue_base lv), lv) with
      | Sf c, Lvar _ -> c.f <- Growable.Float.pop st.fstack
      | Si c, Lvar _ -> c.i <- Growable.pop st.istack
      | Sfa { a; afmt = _ }, Lidx (_, ie) ->
          a.(eval_int st scope ie) <- Growable.Float.pop st.fstack
      | Sia a, Lidx (_, ie) -> a.(eval_int st scope ie) <- Growable.pop st.istack
      | _, _ -> fail "pop: kind mismatch")

and exec_block st scope stmts =
  Scope.push scope;
  List.iter (exec st scope) stmts;
  Scope.pop scope

(* Calls [f] with arguments from the caller's scope. [In] scalars are
   copied; [Out] scalars share the caller's cell; arrays always share. *)
and call_func st caller_scope f args =
  if List.length args <> List.length f.params then
    fail "function %S expects %d arguments, got %d" f.fname
      (List.length f.params) (List.length args);
  let callee = Scope.create () in
  List.iter2
    (fun p arg ->
      let slot =
        match (p.pmode, p.pty, arg) with
        | Out, Tscalar _, Var v -> Scope.find caller_scope v
        | Out, Tscalar _, _ -> fail "out argument for %S must be a variable" f.fname
        | In, Tscalar Sint, _ -> Si { i = eval_int st caller_scope arg }
        | In, Tscalar (Sflt _ as s), _ ->
            let fmt = effective_format st.config s p.pname in
            let x, vfmt = eval_float st caller_scope arg in
            if not (Fp.equal_format vfmt fmt) then charge_cast st;
            Sf { f = Fp.round fmt x; fmt }
        | _, Tarr _, Var v -> Scope.find caller_scope v
        | _, Tarr _, _ -> fail "array argument for %S must be a name" f.fname
      in
      Scope.declare callee p.pname slot)
    f.params args;
  try
    List.iter (exec st callee) f.body;
    None
  with Return_exn v -> v

(* ------------------------------------------------------------------ *)

let default_builtins = lazy (Builtins.create ())

let prepare_args st scope f (args : arg list) =
  if List.length args <> List.length f.params then
    fail "function %S expects %d arguments, got %d" f.fname
      (List.length f.params) (List.length args);
  List.iter2
    (fun p arg ->
      let slot =
        match (p.pty, arg) with
        | Tscalar Sint, Aint n -> Si { i = n }
        | Tscalar (Sflt _ as s), Aflt x ->
            let fmt = effective_format st.config s p.pname in
            Sf { f = Fp.round fmt x; fmt }
        | Tarr (Sflt _ as s), Afarr a ->
            let fmt = effective_format st.config s p.pname in
            if Fp.equal_format fmt Fp.F64 then Sfa { a; afmt = fmt }
            else
              (* A demoted input array holds rounded values; the caller's
                 array is left untouched. *)
              Sfa { a = Array.map (Fp.round fmt) a; afmt = fmt }
        | Tarr Sint, Aiarr a -> Sia a
        | _, _ -> fail "argument kind mismatch for parameter %S" p.pname
      in
      Scope.declare scope p.pname slot)
    f.params args

let run ?builtins ?(config = Config.double) ?(mode = Config.Source) ?counter
    ?(fuel = -1) ~prog ~func args =
  let builtins =
    match builtins with Some b -> b | None -> Lazy.force default_builtins
  in
  let st =
    {
      prog;
      builtins;
      config;
      mode;
      counter;
      fstack = Growable.Float.create ();
      istack = Growable.create ~dummy:0 ();
      ipeak = 0;
      fuel;
    }
  in
  let f = func_exn prog func in
  let scope = Scope.create () in
  prepare_args st scope f args;
  let ret =
    try
      List.iter (exec st scope) f.body;
      None
    with Return_exn v -> v
  in
  let outs =
    List.filter_map
      (fun p ->
        match (p.pmode, p.pty) with
        | Out, Tscalar _ -> (
            match Scope.find scope p.pname with
            | Sf c -> Some (p.pname, Builtins.F c.f)
            | Si c -> Some (p.pname, Builtins.I c.i)
            | _ -> None)
        | _, _ -> None)
      f.params
  in
  {
    ret;
    outs;
    stack_peak_bytes =
      (Growable.Float.peak_length st.fstack * 8) + (st.ipeak * 8);
  }

let run_float ?builtins ?config ?mode ?counter ?fuel ~prog ~func args =
  match (run ?builtins ?config ?mode ?counter ?fuel ~prog ~func args).ret with
  | Some (Builtins.F x) -> x
  | Some (Builtins.I _) -> fail "function %S returned an int" func
  | None -> fail "function %S returned no value" func
