open Ast

let bool_i b = Iconst (if b then 1 else 0)

let rec expr_mentions p = function
  | Var v -> p v
  | Fconst _ | Iconst _ -> false
  | Idx (a, i) -> p a || expr_mentions p i
  | Unop (_, e) -> expr_mentions p e
  | Binop (_, a, b) -> expr_mentions p a || expr_mentions p b
  | Call (_, args) -> List.exists (expr_mentions p) args

let rec fold_expr ?(fast_math = true) ?(opaque = fun _ -> false) e =
  let f = fold_expr ~fast_math ~opaque in
  (* Dropping a binary64 literal operand ([e * 1.0 -> e]) narrows the
     static format of the expression when [e] only touches narrow-storage
     variables, which changes Source-mode rounding of the surrounding
     operation: keep such identities only for format-neutral operands. *)
  let fmt_neutral e = not (expr_mentions opaque e) in
  match e with
  | Fconst _ | Iconst _ | Var _ -> e
  | Idx (a, i) -> Idx (a, f i)
  | Unop (Neg, e) -> (
      match f e with
      | Fconst x -> Fconst (-.x)
      | Iconst n -> Iconst (-n)
      | Unop (Neg, inner) -> inner
      | e -> Unop (Neg, e))
  | Unop (Not, e) -> (
      match f e with Iconst n -> bool_i (n = 0) | e -> Unop (Not, e))
  | Binop (op, a, b) -> (
      let a = f a and b = f b in
      match (op, a, b) with
      (* integer constant folding *)
      | Add, Iconst x, Iconst y -> Iconst (x + y)
      | Sub, Iconst x, Iconst y -> Iconst (x - y)
      | Mul, Iconst x, Iconst y -> Iconst (x * y)
      | Div, Iconst x, Iconst y when y <> 0 -> Iconst (x / y)
      | Mod, Iconst x, Iconst y when y <> 0 -> Iconst (x mod y)
      | Eq, Iconst x, Iconst y -> bool_i (x = y)
      | Ne, Iconst x, Iconst y -> bool_i (x <> y)
      | Lt, Iconst x, Iconst y -> bool_i (x < y)
      | Le, Iconst x, Iconst y -> bool_i (x <= y)
      | Gt, Iconst x, Iconst y -> bool_i (x > y)
      | Ge, Iconst x, Iconst y -> bool_i (x >= y)
      | And, Iconst x, Iconst y -> bool_i (x <> 0 && y <> 0)
      | Or, Iconst x, Iconst y -> bool_i (x <> 0 || y <> 0)
      (* float constant folding *)
      | Add, Fconst x, Fconst y -> Fconst (x +. y)
      | Sub, Fconst x, Fconst y -> Fconst (x -. y)
      | Mul, Fconst x, Fconst y -> Fconst (x *. y)
      | Div, Fconst x, Fconst y -> Fconst (x /. y)
      | Eq, Fconst x, Fconst y -> bool_i (x = y)
      | Ne, Fconst x, Fconst y -> bool_i (x <> y)
      | Lt, Fconst x, Fconst y -> bool_i (x < y)
      | Le, Fconst x, Fconst y -> bool_i (x <= y)
      | Gt, Fconst x, Fconst y -> bool_i (x > y)
      | Ge, Fconst x, Fconst y -> bool_i (x >= y)
      (* identities (exact, format-neutrality checked) *)
      | Add, e, Fconst 0. when fmt_neutral e -> e
      | Add, Fconst 0., e when fmt_neutral e -> e
      | Sub, e, Fconst 0. when fmt_neutral e -> e
      | Sub, Fconst 0., e when fmt_neutral e -> f (Unop (Neg, e))
      | Mul, e, Fconst 1. when fmt_neutral e -> e
      | Mul, Fconst 1., e when fmt_neutral e -> e
      | Div, e, Fconst 1. when fmt_neutral e -> e
      | Mul, e, Fconst -1.0 when fmt_neutral e -> f (Unop (Neg, e))
      | Mul, Fconst -1.0, e when fmt_neutral e -> f (Unop (Neg, e))
      | Add, e, Iconst 0 | Add, Iconst 0, e -> e
      | Sub, e, Iconst 0 -> e
      | Mul, e, Iconst 1 | Mul, Iconst 1, e -> e
      (* fast-math absorbers (wrong for NaN/Inf operands) *)
      | Mul, _, Fconst 0. when fast_math -> Fconst 0.
      | Mul, Fconst 0., _ when fast_math -> Fconst 0.
      | Mul, _, Iconst 0 when fast_math -> Iconst 0
      | Mul, Iconst 0, _ when fast_math -> Iconst 0
      | And, e, Iconst 1 | And, Iconst 1, e -> e
      | And, _, Iconst 0 | And, Iconst 0, _ -> Iconst 0
      | Or, e, Iconst 0 | Or, Iconst 0, e -> e
      | Or, _, Iconst n when n <> 0 -> Iconst 1
      | op, a, b -> Binop (op, a, b))
  | Call (name, args) -> Call (name, List.map f args)

(* ------------------------------------------------------------------ *)
(* Copy / constant propagation within basic blocks.                   *)

module Smap = Map.Make (String)

(* Map from variable to the Var/const expression it currently equals.
   Kill rules: assigning to [v] removes the binding of [v] and any
   binding whose value mentions [v]. *)
let kill env v =
  Smap.filter
    (fun key value ->
      key <> v
      &&
      let rec mentions = function
        | Var x -> x = v
        | Fconst _ | Iconst _ -> false
        | Idx (a, i) -> a = v || mentions i
        | Unop (_, e) -> mentions e
        | Binop (_, a, b) -> mentions a || mentions b
        | Call (_, args) -> List.exists mentions args
      in
      not (mentions value))
    env

let rec prop_expr env = function
  | Var v as e -> ( match Smap.find_opt v env with Some r -> r | None -> e)
  | (Fconst _ | Iconst _) as e -> e
  | Idx (a, i) -> Idx (a, prop_expr env i)
  | Unop (op, e) -> Unop (op, prop_expr env e)
  | Binop (op, a, b) -> Binop (op, prop_expr env a, prop_expr env b)
  | Call (f, args) -> Call (f, List.map (prop_expr env) args)

let rec prop_stmts ~fast_math ~opaque env stmts =
  let prop_stmts = prop_stmts ~fast_math ~opaque in
  let fold_expr ?fast_math:(fm = fast_math) e =
    fold_expr ~fast_math:fm ~opaque e
  in
  match stmts with
  | [] -> (env, [])
  | s :: rest ->
      let env, s =
        match s with
        | Decl ({ init; dty; _ } as d) ->
            let dty =
              match dty with
              | Dscalar _ -> dty
              | Darr (sc, size) ->
                  Darr (sc, fold_expr ~fast_math (prop_expr env size))
            in
            let init = Option.map (fun e -> fold_expr ~fast_math (prop_expr env e)) init in
            let env = kill env d.name in
            let env =
              match init with
              (* forwarding through an opaque target skips its store
                 rounding; forwarding an opaque source narrows the
                 static format of downstream operations *)
              | Some ((Fconst _ | Iconst _) as simple) when not (opaque d.name)
                ->
                  Smap.add d.name simple env
              | Some (Var src) when (not (opaque d.name)) && not (opaque src)
                ->
                  Smap.add d.name (Var src) env
              | _ -> env
            in
            (env, Decl { d with dty; init })
        | Assign (lv, e) -> (
            let e = fold_expr ~fast_math (prop_expr env e) in
            match lv with
            | Lvar v ->
                let env = kill env v in
                let env =
                  if opaque v then env
                  else
                    match e with
                    | (Fconst _ | Iconst _) as c -> Smap.add v c env
                    | Var src when src <> v && not (opaque src) ->
                        Smap.add v (Var src) env
                    | _ -> env
                in
                (env, Assign (lv, e))
            | Lidx (a, i) ->
                let i = fold_expr ~fast_math (prop_expr env i) in
                (* Writing a[i] invalidates bindings mentioning a. *)
                (kill env a, Assign (Lidx (a, i), e)))
        | If (c, t, e) -> (
            let c = fold_expr ~fast_math (prop_expr env c) in
            match (c, fast_math) with
            | Iconst n, _ ->
                let branch = if n <> 0 then t else e in
                let env', branch = prop_stmts env branch in
                (* Splice: return the branch as a block via If(1,branch,[]).
                   We instead return statements directly by re-wrapping. *)
                (env', If (Iconst 1, branch, []))
            | _ ->
                let _, t = prop_stmts env t in
                let _, e = prop_stmts env e in
                (* Conservative join: drop all facts. *)
                (Smap.empty, If (c, t, e)))
        | For ({ lo; hi; body; _ } as l) ->
            let lo = fold_expr ~fast_math (prop_expr env lo) in
            let hi = fold_expr ~fast_math (prop_expr env hi) in
            (* The body runs many times: start from no facts, end with none. *)
            let _, body = prop_stmts Smap.empty body in
            (Smap.empty, For { l with lo; hi; body })
        | While (c, body) ->
            let _, body = prop_stmts Smap.empty body in
            (Smap.empty, While (c, body))
        | Return e ->
            (env, Return (Option.map (fun e -> fold_expr ~fast_math (prop_expr env e)) e))
        | Call_stmt (f, args) ->
            ( env,
              Call_stmt
                (f, List.map (fun e -> fold_expr ~fast_math (prop_expr env e)) args) )
        | Push (Lidx (a, i)) ->
            (env, Push (Lidx (a, fold_expr ~fast_math (prop_expr env i))))
        | Pop (Lvar v) -> (kill env v, s)
        | Pop (Lidx (a, i)) ->
            (kill env a, Pop (Lidx (a, fold_expr ~fast_math (prop_expr env i))))
        | Push (Lvar _) -> (env, s)
      in
      let env, rest = prop_stmts env rest in
      (env, s :: rest)

(* Flattens If(1, block, []) markers produced by constant branches. *)
let rec flatten stmts =
  List.concat_map
    (function
      | If (Iconst 1, t, []) -> flatten t
      | If (Iconst 0, _, e) -> flatten e
      | If (c, t, e) -> [ If (c, flatten t, flatten e) ]
      | For l -> [ For { l with body = flatten l.body } ]
      | While (c, body) -> [ While (c, flatten body) ]
      | s -> [ s ])
    stmts

(* ------------------------------------------------------------------ *)
(* Dead local elimination.                                            *)

let reads_of_func f =
  let reads = Hashtbl.create 64 in
  let mark v = Hashtbl.replace reads v () in
  let rec expr = function
    | Var v -> mark v
    | Fconst _ | Iconst _ -> ()
    | Idx (a, i) ->
        mark a;
        expr i
    | Unop (_, e) -> expr e
    | Binop (_, a, b) ->
        expr a;
        expr b
    | Call (_, args) -> List.iter expr args
  in
  let lvalue_reads = function
    | Lvar _ -> ()
    | Lidx (a, i) ->
        mark a;
        expr i
  in
  let rec stmt = function
    | Decl { dty = Darr (_, size); init; _ } ->
        expr size;
        Option.iter expr init
    | Decl { init; _ } -> Option.iter expr init
    | Assign (lv, e) ->
        lvalue_reads lv;
        expr e
    | If (c, t, e) ->
        expr c;
        List.iter stmt t;
        List.iter stmt e
    | For { lo; hi; body; _ } ->
        expr lo;
        expr hi;
        List.iter stmt body
    | While (c, body) ->
        expr c;
        List.iter stmt body
    | Return e -> Option.iter expr e
    | Call_stmt (_, args) -> List.iter expr args
    | Push lv ->
        (* pushing reads the location *)
        (match lv with Lvar v -> mark v | Lidx _ -> ());
        lvalue_reads lv
    | Pop lv ->
        (* a pop writes the location but keeps the stack balanced: the
           location itself is not a read, the index is *)
        lvalue_reads lv
  in
  List.iter stmt f.body;
  reads

let dead_local_elim f =
  let protected = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace protected p.pname ()) f.params;
  (* Variables involved in push/pop must survive: the value stack
     discipline depends on them. *)
  let rec protect_pushpop = function
    | Push lv | Pop lv -> Hashtbl.replace protected (lvalue_base lv) ()
    | If (_, t, e) ->
        List.iter protect_pushpop t;
        List.iter protect_pushpop e
    | For { body; _ } | While (_, body) -> List.iter protect_pushpop body
    | Decl _ | Assign _ | Return _ | Call_stmt _ -> ()
  in
  List.iter protect_pushpop f.body;
  let reads = reads_of_func f in
  let dead v = (not (Hashtbl.mem protected v)) && not (Hashtbl.mem reads v) in
  let rec clean stmts =
    List.filter_map
      (function
        | Decl { name; _ } when dead name -> None
        | Assign (Lvar v, _) when dead v -> None
        | If (c, t, e) -> Some (If (c, clean t, clean e))
        | For l -> Some (For { l with body = clean l.body })
        | While (c, body) -> Some (While (c, clean body))
        | s -> Some s)
      stmts
  in
  { f with body = clean f.body }

(* Variables whose storage format is narrower than binary64 round on
   every store; forwarding values through them (copy/const propagation,
   CSE availability) would skip that rounding and change mixed-precision
   semantics, so they are opaque to those rewrites. *)
let declared_narrow f =
  let narrow = Hashtbl.create 8 in
  let scalar_narrow = function
    | Sflt fmt -> not (Cheffp_precision.Fp.equal_format fmt Cheffp_precision.Fp.F64)
    | Sint -> false
  in
  List.iter
    (fun p ->
      match p.pty with
      | Tscalar sc | Tarr sc ->
          if scalar_narrow sc then Hashtbl.replace narrow p.pname ())
    f.params;
  let rec stmt = function
    | Decl { name; dty = Dscalar sc; _ } | Decl { name; dty = Darr (sc, _); _ }
      ->
        if scalar_narrow sc then Hashtbl.replace narrow name ()
    | If (_, a, b) ->
        List.iter stmt a;
        List.iter stmt b
    | For { body; _ } | While (_, body) -> List.iter stmt body
    | Assign _ | Return _ | Call_stmt _ | Push _ | Pop _ -> ()
  in
  List.iter stmt f.body;
  narrow

let optimize_func ?(fast_math = true) ?(cse = true) ?(opaque = fun _ -> false) f =
  let narrow = declared_narrow f in
  let opaque v = opaque v || Hashtbl.mem narrow v in
  let f = if cse then Cse.cse_func ~opaque f else f in
  let pass f =
    let _, body = prop_stmts ~fast_math ~opaque Smap.empty f.body in
    let f = { f with body = flatten body } in
    dead_local_elim f
  in
  let rec fixpoint k f =
    if k = 0 then f
    else
      let f' = pass f in
      if f' = f then f else fixpoint (k - 1) f'
  in
  fixpoint 8 f
