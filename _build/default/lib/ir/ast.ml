(** Abstract syntax of MiniFP, the small imperative floating-point
    language all analyses in this project transform.

    MiniFP plays the role C++/Clang ASTs play for the paper's tool: an
    imperative language with scalar and array variables, [for]/[while]
    loops, branches, and calls to math intrinsics. Programs are pure data;
    every transformation (AD, error-estimation injection, optimization)
    maps ASTs to ASTs, and generated functions can be pretty-printed back
    to source ({!Pp}) exactly like a source-transformation tool. *)

type scalar =
  | Sint
  | Sflt of Cheffp_precision.Fp.format
      (** Floats carry a declared storage format; the reference programs
          use [F64] everywhere and mixed-precision configurations demote
          variables externally (see [Cheffp_precision.Config]). *)

type ty = Tscalar of scalar | Tarr of scalar  (** arrays have unknown extent in types *)

type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod  (** integers only *)
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And  (** non-short-circuit; operands are integers *)
  | Or

type expr =
  | Fconst of float
  | Iconst of int
  | Var of string
  | Idx of string * expr  (** [a[i]] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
      (** intrinsic or user-function call; user calls in expressions must
          be to functions with only [In] parameters *)

type lvalue = Lvar of string | Lidx of string * expr

type decl_ty =
  | Dscalar of scalar
  | Darr of scalar * expr  (** local array with a size expression *)

type stmt =
  | Decl of { name : string; dty : decl_ty; init : expr option }
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | For of { var : string; lo : expr; hi : expr; down : bool; body : stmt list }
      (** [down = false]: i = lo, lo+1, ..., hi-1 (half-open, upward).
          [down = true]: i = hi-1, hi-2, ..., lo. Bounds are evaluated
          once, before the first iteration. *)
  | While of expr * stmt list
  | Return of expr option
  | Call_stmt of string * expr list  (** user-function call for its effects *)
  | Push of lvalue
      (** evaluate the location and push its value on the run-time value
          stack; only emitted by the AD transformation (paper Fig. 2) *)
  | Pop of lvalue  (** pop the value stack into the location *)

type mode = In | Out

type param = { pname : string; pty : ty; pmode : mode }

type func = {
  fname : string;
  params : param list;
  ret : scalar option;  (** [None] for void functions *)
  body : stmt list;
}

type program = { funcs : func list }

let find_func prog name = List.find_opt (fun f -> f.fname = name) prog.funcs

let func_exn prog name =
  match find_func prog name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "MiniFP: no function named %S" name)

let add_func prog f = { funcs = prog.funcs @ [ f ] }

let lvalue_base = function Lvar v -> v | Lidx (v, _) -> v

(* -------------------------------------------------------------------- *)
(* Builders: an OCaml eDSL for writing MiniFP programs concisely.       *)

module Build = struct
  let f64 = Tscalar (Sflt Cheffp_precision.Fp.F64)
  let f32 = Tscalar (Sflt Cheffp_precision.Fp.F32)
  let int_ty = Tscalar Sint
  let f64_arr = Tarr (Sflt Cheffp_precision.Fp.F64)
  let int_arr = Tarr Sint
  let fc x = Fconst x
  let ic n = Iconst n
  let v name = Var name
  let idx a i = Idx (a, i)
  let ( + ) a b = Binop (Add, a, b)
  let ( - ) a b = Binop (Sub, a, b)
  let ( * ) a b = Binop (Mul, a, b)
  let ( / ) a b = Binop (Div, a, b)
  let ( % ) a b = Binop (Mod, a, b)
  let ( = ) a b = Binop (Eq, a, b)
  let ( <> ) a b = Binop (Ne, a, b)
  let ( < ) a b = Binop (Lt, a, b)
  let ( <= ) a b = Binop (Le, a, b)
  let ( > ) a b = Binop (Gt, a, b)
  let ( >= ) a b = Binop (Ge, a, b)
  let ( && ) a b = Binop (And, a, b)
  let ( || ) a b = Binop (Or, a, b)
  let neg a = Unop (Neg, a)
  let call f args = Call (f, args)
  let sqrt_ x = Call ("sqrt", [ x ])
  let exp_ x = Call ("exp", [ x ])
  let log_ x = Call ("log", [ x ])
  let sin_ x = Call ("sin", [ x ])
  let cos_ x = Call ("cos", [ x ])
  let pow_ x y = Call ("pow", [ x; y ])
  let fabs_ x = Call ("fabs", [ x ])
  let itof x = Call ("itof", [ x ])
  let decl ?init name dty = Decl { name; dty; init }
  let dfloat ?init name = decl ?init name (Dscalar (Sflt Cheffp_precision.Fp.F64))
  let dint ?init name = decl ?init name (Dscalar Sint)
  let darr name size = decl name (Darr (Sflt Cheffp_precision.Fp.F64, size))
  let set name e = Assign (Lvar name, e)
  let seti a i e = Assign (Lidx (a, i), e)
  let if_ c t e = If (c, t, e)
  let for_ var lo hi body = For { var; lo; hi; down = false; body }
  let while_ c body = While (c, body)
  let ret e = Return (Some e)
  let param ?(mode = In) pname pty = { pname; pty; pmode = mode }
  let out_param pname pty = { pname; pty; pmode = Out }

  let func ?(ret = Some (Sflt Cheffp_precision.Fp.F64)) fname params body =
    { fname; params; ret; body }
end
