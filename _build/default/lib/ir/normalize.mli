(** Normalisation in preparation for reverse-mode AD.

    Produces an equivalent function where (a) user calls are inlined,
    (b) every local (including loop variables) has a unique name, and
    (c) all declarations are hoisted to the top of the body, their
    initialisers becoming ordinary assignments in place. Hoisting lets
    the AD engine declare one adjoint per variable that is in scope for
    both the forward and the backward sweep.

    Because declarations move above the code that precedes them, local
    array sizes must be expressions over parameters and literals only. *)

exception Error of string

val normalize_func : Ast.program -> Ast.func -> Ast.func

val locals :
  Ast.func -> (string * Ast.decl_ty) list
(** Hoisted declarations of a normalized function, in order: the prefix
    of [Decl] statements at the top of the body. *)
