(** Static checking of MiniFP programs.

    Verifies declaration-before-use, kind agreement (no implicit
    int/float conversions; use [itof]/[ftoi]), array indexing, intrinsic
    signatures, user-call conventions (expression calls only to functions
    whose parameters are all [In]; [out] arguments must be plain variable
    names), loop-variable immutability, and return typing. *)

exception Error of string

type ety = Escalar of Builtins.kind | Earr of Builtins.kind

val check_program : ?builtins:Builtins.t -> Ast.program -> unit
(** @raise Error with a human-readable message on the first violation. *)

val check_func : ?builtins:Builtins.t -> Ast.program -> Ast.func -> unit
(** Check one function in the context of [program] (for user calls). *)

val expr_kind :
  ?builtins:Builtins.t ->
  Ast.program ->
  (string -> Ast.ty option) ->
  Ast.expr ->
  ety
(** [expr_kind prog lookup e] types [e] with variable types given by
    [lookup]. Used by the AD engine to distinguish integer from float
    assignments. @raise Error on ill-typed input. *)
