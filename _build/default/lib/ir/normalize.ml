open Ast

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let rec free_vars acc = function
  | Fconst _ | Iconst _ -> acc
  | Var v -> v :: acc
  | Idx (a, i) -> free_vars (a :: acc) i
  | Unop (_, e) -> free_vars acc e
  | Binop (_, a, b) -> free_vars (free_vars acc a) b
  | Call (_, args) -> List.fold_left free_vars acc args

let normalize_func prog f =
  let f = Inline.inline_func prog f in
  let names = Rename.create () in
  List.iter (fun p -> Rename.reserve names p.pname) f.params;
  let params = List.map (fun p -> p.pname) f.params in
  let subst = Subst.create () in
  let decls = ref [] in
  let hoist original_name dty =
    let name' = Rename.fresh names original_name in
    (match dty with
    | Darr (_, size) ->
        let fv = free_vars [] size in
        List.iter
          (fun v ->
            if not (List.mem v params) then
              err
                "size of local array %S in %S references %S; hoisted array \
                 sizes may only use parameters and literals"
                original_name f.fname v)
          fv
    | Dscalar _ -> ());
    decls := (name', dty) :: !decls;
    name'
  in
  let rec stmt added = function
    | Decl { name; dty; init } ->
        let dty =
          match dty with
          | Dscalar _ as d -> d
          | Darr (s, size) -> Darr (s, Subst.expr subst size)
        in
        let init = Option.map (Subst.expr subst) init in
        let name' = hoist name dty in
        Subst.push subst name (Var name');
        added := name :: !added;
        (match init with
        | Some e -> [ Assign (Lvar name', e) ]
        | None -> [])
    | Assign (lv, e) -> [ Assign (Subst.lvalue subst lv, Subst.expr subst e) ]
    | If (c, a, b) -> [ If (Subst.expr subst c, block a, block b) ]
    | For { var; lo; hi; down; body } ->
        let lo = Subst.expr subst lo and hi = Subst.expr subst hi in
        let var' = Rename.fresh names var in
        Subst.push subst var (Var var');
        let body = block body in
        Subst.unwind subst [ var ];
        [ For { var = var'; lo; hi; down; body } ]
    | While (c, body) -> [ While (Subst.expr subst c, block body) ]
    | Return e -> [ Return (Option.map (Subst.expr subst) e) ]
    | Call_stmt (name, args) ->
        [ Call_stmt (name, List.map (Subst.expr subst) args) ]
    | Push lv -> [ Push (Subst.lvalue subst lv) ]
    | Pop lv -> [ Pop (Subst.lvalue subst lv) ]
  and block stmts =
    let added = ref [] in
    let result = List.concat_map (stmt added) stmts in
    Subst.unwind subst !added;
    result
  in
  let body = block f.body in
  let decl_stmts =
    List.rev_map (fun (name, dty) -> Decl { name; dty; init = None }) !decls
  in
  { f with body = decl_stmts @ body }

let locals f =
  let rec prefix acc = function
    | Decl { name; dty; _ } :: rest -> prefix ((name, dty) :: acc) rest
    | _ -> List.rev acc
  in
  prefix [] f.body
