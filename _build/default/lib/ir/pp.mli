(** Pretty-printing of MiniFP programs back to concrete syntax.

    Output is re-parseable by {!Parser} (round-trip is tested), so the
    generated adjoint-with-error-estimation functions can be inspected as
    source code, just like the paper's Clad-generated C++. *)

val pp_scalar : Format.formatter -> Ast.scalar -> unit
val pp_ty : Format.formatter -> Ast.ty -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_lvalue : Format.formatter -> Ast.lvalue -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val expr_to_string : Ast.expr -> string
val func_to_string : Ast.func -> string
val program_to_string : Ast.program -> string
