open Ast

exception Error of string

type ety = Escalar of Builtins.kind | Earr of Builtins.kind

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let ety_name = function
  | Escalar k -> Builtins.kind_name k
  | Earr k -> Builtins.kind_name k ^ "[]"

let ety_of_ty = function
  | Tscalar s -> Escalar (Builtins.kind_of_scalar s)
  | Tarr s -> Earr (Builtins.kind_of_scalar s)

(* Lexically-scoped typing environment. *)
module Scope = struct
  type t = { mutable frames : (string, ty) Hashtbl.t list }

  let create () = { frames = [ Hashtbl.create 16 ] }
  let push t = t.frames <- Hashtbl.create 8 :: t.frames

  let pop t =
    match t.frames with
    | _ :: (_ :: _ as rest) -> t.frames <- rest
    | _ -> invalid_arg "Typecheck.Scope.pop"

  let find t name =
    let rec go = function
      | [] -> None
      | frame :: rest -> (
          match Hashtbl.find_opt frame name with
          | Some ty -> Some ty
          | None -> go rest)
    in
    go t.frames

  let declare t name ty =
    match t.frames with
    | frame :: _ ->
        if Hashtbl.mem frame name then
          err "variable %S redeclared in the same scope" name;
        Hashtbl.add frame name ty
    | [] -> assert false
end

let rec kind_of_expr ~builtins ~prog ~lookup e =
  let recur e = kind_of_expr ~builtins ~prog ~lookup e in
  let scalar_of name e =
    match recur e with
    | Escalar k -> k
    | Earr _ as t -> err "%s: expected a scalar, got %s" name (ety_name t)
  in
  match e with
  | Fconst _ -> Escalar Builtins.Kflt
  | Iconst _ -> Escalar Builtins.Kint
  | Var v -> (
      match lookup v with
      | Some ty -> ety_of_ty ty
      | None -> err "use of undeclared variable %S" v)
  | Idx (a, i) -> (
      (match recur i with
      | Escalar Builtins.Kint -> ()
      | t -> err "index into %S must be an int, got %s" a (ety_name t));
      match lookup a with
      | Some (Tarr s) -> Escalar (Builtins.kind_of_scalar s)
      | Some (Tscalar _) -> err "%S is a scalar, not an array" a
      | None -> err "use of undeclared array %S" a)
  | Unop (Neg, e) -> (
      match scalar_of "negation" e with k -> Escalar k)
  | Unop (Not, e) -> (
      match scalar_of "logical not" e with
      | Builtins.Kint -> Escalar Builtins.Kint
      | Builtins.Kflt -> err "logical not applies to int, got float")
  | Binop (op, a, b) -> (
      let ka = scalar_of "binary operand" a
      and kb = scalar_of "binary operand" b in
      if ka <> kb then
        err "operands of %s have different kinds (%s vs %s); use itof/ftoi"
          (Pp.expr_to_string (Binop (op, Var "_", Var "_")))
          (Builtins.kind_name ka) (Builtins.kind_name kb);
      match op with
      | Add | Sub | Mul | Div -> Escalar ka
      | Mod ->
          if ka <> Builtins.Kint then err "%% applies to int operands";
          Escalar Builtins.Kint
      | Eq | Ne | Lt | Le | Gt | Ge -> Escalar Builtins.Kint
      | And | Or ->
          if ka <> Builtins.Kint then err "&&/|| apply to int operands";
          Escalar Builtins.Kint)
  | Call (name, args) -> (
      match Builtins.find builtins name with
      | Some (sg, _) ->
          let expected = List.length sg.Builtins.args in
          if List.length args <> expected then
            err "intrinsic %S expects %d arguments, got %d" name expected
              (List.length args);
          List.iter2
            (fun k arg ->
              match recur arg with
              | Escalar k' when k' = k -> ()
              | t ->
                  err "intrinsic %S: argument has kind %s, expected %s" name
                    (ety_name t) (Builtins.kind_name k))
            sg.Builtins.args args;
          Escalar sg.Builtins.ret
      | None -> (
          match find_func prog name with
          | None -> err "call to unknown function or intrinsic %S" name
          | Some f ->
              (match f.ret with
              | None -> err "void function %S used in an expression" name
              | Some _ -> ());
              List.iter
                (fun p ->
                  if p.pmode = Out then
                    err
                      "function %S has out parameters and cannot be called in \
                       an expression"
                      name)
                f.params;
              if List.length args <> List.length f.params then
                err "function %S expects %d arguments, got %d" name
                  (List.length f.params) (List.length args);
              List.iter2
                (fun p arg ->
                  let want = ety_of_ty p.pty and got = recur arg in
                  if want <> got then
                    err "call to %S: argument %S has type %s, expected %s" name
                      p.pname (ety_name got) (ety_name want))
                f.params args;
              Escalar
                (Builtins.kind_of_scalar
                   (match f.ret with Some s -> s | None -> assert false))))

let expr_kind ?(builtins = Builtins.create ()) prog lookup e =
  kind_of_expr ~builtins ~prog ~lookup e

let check_func ?(builtins = Builtins.create ()) prog f =
  let scope = Scope.create () in
  let loop_vars = Hashtbl.create 8 in
  List.iter
    (fun p ->
      (match p.pty with
      | Tscalar _ -> ()
      | Tarr _ ->
          if p.pmode = Out then ()
          (* arrays are by-reference either way; Out marks intent *));
      Scope.declare scope p.pname p.pty)
    f.params;
  let lookup v = Scope.find scope v in
  let expr e = kind_of_expr ~builtins ~prog ~lookup e in
  let expect_int what e =
    match expr e with
    | Escalar Builtins.Kint -> ()
    | t -> err "%s in %S must be an int, got %s" what f.fname (ety_name t)
  in
  let lvalue_kind = function
    | Lvar v -> (
        match lookup v with
        | Some (Tscalar s) ->
            if Hashtbl.mem loop_vars v then
              err "loop variable %S may not be assigned" v;
            Builtins.kind_of_scalar s
        | Some (Tarr _) -> err "cannot assign to array %S as a whole" v
        | None -> err "assignment to undeclared variable %S" v)
    | Lidx (a, i) -> (
        expect_int "array index" i;
        match lookup a with
        | Some (Tarr s) -> Builtins.kind_of_scalar s
        | Some (Tscalar _) -> err "%S is a scalar, not an array" a
        | None -> err "use of undeclared array %S" a)
  in
  let rec stmt = function
    | Decl { name; dty; init } -> (
        let ty =
          match dty with
          | Dscalar s -> Tscalar s
          | Darr (s, size) ->
              expect_int "array size" size;
              Tarr s
        in
        Scope.declare scope name ty;
        match (init, dty) with
        | None, _ -> ()
        | Some _, Darr _ -> err "array %S cannot have a scalar initialiser" name
        | Some e, Dscalar s ->
            let want = Builtins.kind_of_scalar s in
            (match expr e with
            | Escalar k when k = want -> ()
            | t ->
                err "initialiser of %S has type %s, expected %s" name
                  (ety_name t) (Builtins.kind_name want)))
    | Assign (lv, e) -> (
        let want = lvalue_kind lv in
        match expr e with
        | Escalar k when k = want -> ()
        | t ->
            err "assignment to %s has type %s, expected %s"
              (Format.asprintf "%a" Pp.pp_lvalue lv)
              (ety_name t) (Builtins.kind_name want))
    | If (c, t, e) ->
        expect_int "if condition" c;
        block t;
        block e
    | For { var; lo; hi; down = _; body } ->
        expect_int "loop bound" lo;
        expect_int "loop bound" hi;
        Scope.push scope;
        Scope.declare scope var (Tscalar Sint);
        Hashtbl.add loop_vars var ();
        List.iter stmt body;
        Hashtbl.remove loop_vars var;
        Scope.pop scope
    | While (c, body) ->
        expect_int "while condition" c;
        block body
    | Return None ->
        if f.ret <> None then err "function %S must return a value" f.fname
    | Return (Some e) -> (
        match f.ret with
        | None -> err "void function %S returns a value" f.fname
        | Some s -> (
            let want = Builtins.kind_of_scalar s in
            match expr e with
            | Escalar k when k = want -> ()
            | t ->
                err "return in %S has type %s, expected %s" f.fname
                  (ety_name t) (Builtins.kind_name want)))
    | Call_stmt (name, args) -> (
        match Builtins.find builtins name with
        | Some _ -> ignore (expr (Call (name, args)))
        | None -> (
            match find_func prog name with
            | None -> err "call to unknown function %S" name
            | Some callee ->
                if List.length args <> List.length callee.params then
                  err "function %S expects %d arguments, got %d" name
                    (List.length callee.params)
                    (List.length args);
                List.iter2
                  (fun p arg ->
                    let want = ety_of_ty p.pty in
                    (match (p.pmode, p.pty, arg) with
                    | Out, Tscalar _, Var v -> (
                        match lookup v with
                        | Some (Tscalar _) -> ()
                        | Some (Tarr _) | None ->
                            err
                              "out argument for %S.%S must be a scalar \
                               variable"
                              name p.pname)
                    | Out, Tscalar _, _ ->
                        err "out argument for %S.%S must be a variable name"
                          name p.pname
                    | _, Tarr _, Var _ -> ()
                    | _, Tarr _, _ ->
                        err "array argument for %S.%S must be an array name"
                          name p.pname
                    | In, Tscalar _, _ -> ());
                    let got = expr arg in
                    if got <> want then
                      err "call to %S: argument %S has type %s, expected %s"
                        name p.pname (ety_name got) (ety_name want))
                  callee.params args))
    | Push lv | Pop lv -> ignore (lvalue_kind lv)
  and block stmts =
    Scope.push scope;
    List.iter stmt stmts;
    Scope.pop scope
  in
  List.iter stmt f.body

let check_program ?(builtins = Builtins.create ()) prog =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.fname then
        err "function %S defined more than once" f.fname;
      if Builtins.mem builtins f.fname then
        err "function %S shadows an intrinsic" f.fname;
      Hashtbl.add seen f.fname ();
      let params = Hashtbl.create 8 in
      List.iter
        (fun p ->
          if Hashtbl.mem params p.pname then
            err "function %S has duplicate parameter %S" f.fname p.pname;
          Hashtbl.add params p.pname ())
        f.params)
    prog.funcs;
  List.iter (fun f -> check_func ~builtins prog f) prog.funcs
