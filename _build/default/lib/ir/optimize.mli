(** Optimization passes over MiniFP.

    These play the role of the host compiler's pipeline in the paper: the
    adjoint-with-error-code that the CHEF-FP generator emits is cleaned up
    here before execution, which is a large part of why inlined error
    estimation beats tape-based tools (paper §I, §III).

    Passes:
    - local common-subexpression elimination (see {!Cse});
    - constant folding and algebraic simplification ([x*1], [x+0],
      [x*0 -> 0] in fast-math style, double negation, constant branches);
    - forward copy/constant propagation within basic blocks (with
      conservative kills at control-flow joins and loop bodies);
    - dead-code elimination of scalar locals that are never read.

    [0*x -> 0] and constant-condition pruning are exact for the finite,
    non-exceptional values analysis code computes but not for NaN/Inf
    inputs; [optimize_func ~fast_math:false] disables those rewrites. *)

val fold_expr :
  ?fast_math:bool -> ?opaque:(string -> bool) -> Ast.expr -> Ast.expr
(** One bottom-up folding/simplification pass over an expression.
    Identities that drop a binary64 literal operand ([e * 1.0 -> e]) are
    skipped when [e] mentions an [opaque] (narrow-storage) variable:
    they would narrow the expression's static format and change
    Source-mode rounding around it. *)

val optimize_func :
  ?fast_math:bool -> ?cse:bool -> ?opaque:(string -> bool) -> Ast.func -> Ast.func
(** Runs local CSE ({!Cse}, on by default) once, then folding,
    propagation, and DCE to a fixpoint (bounded). Out parameters and
    arrays are never removed.

    [opaque] names variables whose stored value must always be re-read
    rather than forwarded — the mixed-precision case: a store into a
    demoted variable rounds, so propagating the pre-store value through
    it would change semantics. Variables with a narrow declared type are
    opaque automatically; pass configuration-demoted names here (the
    closure compiler does). *)
