lib/ir/parser.ml: Array Ast Cheffp_precision Format Lexer List Printf
