lib/ir/compile.ml: Array Ast Builtins Cheffp_precision Cheffp_util Float Format Inline Interp List Optimize Pp Typecheck
