lib/ir/lexer.ml: Format List Printf String
