lib/ir/pp.ml: Ast Cheffp_precision Float Format Printf
