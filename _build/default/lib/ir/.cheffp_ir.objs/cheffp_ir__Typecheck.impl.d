lib/ir/typecheck.ml: Ast Builtins Format Hashtbl List Pp
