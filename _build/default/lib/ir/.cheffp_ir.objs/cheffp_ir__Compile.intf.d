lib/ir/compile.mli: Ast Builtins Cheffp_precision Interp
