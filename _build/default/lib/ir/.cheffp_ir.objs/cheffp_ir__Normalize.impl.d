lib/ir/normalize.ml: Ast Format Inline List Option Rename Subst
