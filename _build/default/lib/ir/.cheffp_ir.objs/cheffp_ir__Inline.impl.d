lib/ir/inline.ml: Ast Format List Option Rename Subst
