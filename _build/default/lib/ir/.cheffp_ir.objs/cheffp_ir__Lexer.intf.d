lib/ir/lexer.mli:
