lib/ir/cse.mli: Ast Builtins
