lib/ir/optimize.ml: Ast Cheffp_precision Cse Hashtbl List Map Option String
