lib/ir/builtins.ml: Array Ast Cheffp_precision Float Hashtbl List
