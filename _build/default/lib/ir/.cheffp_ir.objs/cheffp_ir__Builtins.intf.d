lib/ir/builtins.mli: Ast Cheffp_precision
