lib/ir/interp.mli: Ast Builtins Cheffp_precision
