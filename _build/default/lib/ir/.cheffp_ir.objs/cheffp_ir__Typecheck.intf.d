lib/ir/typecheck.mli: Ast Builtins
