lib/ir/optimize.mli: Ast
