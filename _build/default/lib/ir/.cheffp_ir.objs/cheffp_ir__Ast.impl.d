lib/ir/ast.ml: Cheffp_precision List Printf
