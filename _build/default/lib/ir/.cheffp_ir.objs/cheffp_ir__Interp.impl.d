lib/ir/interp.ml: Array Ast Builtins Cheffp_precision Cheffp_util Format Hashtbl Lazy List Option Pp
