lib/ir/rename.ml: Ast Hashtbl List Printf
