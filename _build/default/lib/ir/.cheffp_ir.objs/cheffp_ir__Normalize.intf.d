lib/ir/normalize.mli: Ast
