lib/ir/cse.ml: Ast Builtins Cheffp_precision Hashtbl List Option Rename String Typecheck
