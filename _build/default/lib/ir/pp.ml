open Ast

let scalar_name = function
  | Sint -> "int"
  | Sflt fmt -> Cheffp_precision.Fp.format_to_string fmt

let pp_scalar ppf s = Format.pp_print_string ppf (scalar_name s)

let pp_ty ppf = function
  | Tscalar s -> pp_scalar ppf s
  | Tarr s -> Format.fprintf ppf "%s[]" (scalar_name s)

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

let float_literal x =
  if Float.is_integer x && Float.abs x < 1e16 then Printf.sprintf "%.1f" x
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.17g" x in
    let shorter = Printf.sprintf "%.9g" x in
    if float_of_string shorter = x then shorter else s

(* [level] is the precedence of the context; parenthesise when the node
   binds less tightly. *)
let rec pp_expr_prec level ppf e =
  match e with
  | Fconst x ->
      if x < 0. || 1. /. x < 0. then Format.fprintf ppf "(%s)" (float_literal x)
      else Format.pp_print_string ppf (float_literal x)
  | Iconst n ->
      if n < 0 then Format.fprintf ppf "(%d)" n else Format.fprintf ppf "%d" n
  | Var v -> Format.pp_print_string ppf v
  | Idx (a, i) -> Format.fprintf ppf "%s[%a]" a (pp_expr_prec 0) i
  | Unop (Neg, e) -> Format.fprintf ppf "(-%a)" (pp_expr_prec 7) e
  | Unop (Not, e) -> Format.fprintf ppf "(!%a)" (pp_expr_prec 7) e
  | Binop (op, a, b) ->
      let p = prec op in
      let body ppf () =
        Format.fprintf ppf "%a %s %a" (pp_expr_prec p) a (binop_name op)
          (pp_expr_prec (p + 1)) b
      in
      if p < level then Format.fprintf ppf "(%a)" body ()
      else Format.fprintf ppf "%a" body ()
  | Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (pp_expr_prec 0))
        args

let pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_lvalue ppf = function
  | Lvar v -> Format.pp_print_string ppf v
  | Lidx (a, i) -> Format.fprintf ppf "%s[%a]" a pp_expr i

let pp_decl_ty ppf = function
  | Dscalar s -> pp_scalar ppf s
  | Darr (s, size) -> Format.fprintf ppf "%s[%a]" (scalar_name s) pp_expr size

let rec pp_stmt ppf = function
  | Decl { name; dty; init = None } ->
      Format.fprintf ppf "@[<h>var %s: %a;@]" name pp_decl_ty dty
  | Decl { name; dty; init = Some e } ->
      Format.fprintf ppf "@[<h>var %s: %a = %a;@]" name pp_decl_ty dty pp_expr e
  | Assign (lv, e) -> Format.fprintf ppf "@[<h>%a = %a;@]" pp_lvalue lv pp_expr e
  | If (c, t, []) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_block t
  | If (c, t, e) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
        pp_expr c pp_block t pp_block e
  | For { var; lo; hi; down; body } ->
      Format.fprintf ppf "@[<v 2>for %s in %a .. %a%s {@,%a@]@,}" var pp_expr lo
        pp_expr hi
        (if down then " reversed" else "")
        pp_block body
  | While (c, body) ->
      Format.fprintf ppf "@[<v 2>while (%a) {@,%a@]@,}" pp_expr c pp_block body
  | Return None -> Format.pp_print_string ppf "return;"
  | Return (Some e) -> Format.fprintf ppf "@[<h>return %a;@]" pp_expr e
  | Call_stmt (f, args) ->
      Format.fprintf ppf "@[<h>%a;@]" pp_expr (Call (f, args))
  | Push lv -> Format.fprintf ppf "@[<h>push %a;@]" pp_lvalue lv
  | Pop lv -> Format.fprintf ppf "@[<h>pop %a;@]" pp_lvalue lv

and pp_block ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

let pp_param ppf { pname; pty; pmode } =
  Format.fprintf ppf "%s%s: %a"
    (match pmode with In -> "" | Out -> "out ")
    pname pp_ty pty

let pp_func ppf { fname; params; ret; body } =
  let pp_ret ppf = function
    | None -> Format.pp_print_string ppf "void"
    | Some s -> pp_scalar ppf s
  in
  Format.fprintf ppf "@[<v 2>func %s(%a): %a {@,%a@]@,}" fname
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_param)
    params pp_ret ret pp_block body

let pp_program ppf { funcs } =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,")
    pp_func ppf funcs;
  Format.pp_print_cut ppf ()

let expr_to_string e = Format.asprintf "%a" pp_expr e
let func_to_string f = Format.asprintf "@[<v>%a@]" pp_func f
let program_to_string p = Format.asprintf "@[<v>%a@]" pp_program p
