(** Closure compiler for MiniFP.

    Compiles a function (after auto-inlining its user calls) into nested
    OCaml closures over a slot-resolved environment: variables become
    array indices resolved at compile time, so execution carries no name
    lookups and no value boxing on the hot path. This is the project's
    stand-in for the paper's "generated source goes through the
    compiler's optimization pipeline": CHEF-FP analysis code is optimized
    ({!Optimize}) and compiled here before it runs, which is what makes it
    faster and leaner than the tape-based baseline.

    Precision semantics match {!Interp} and are baked statically: under a
    mixed-precision configuration every float expression's format is
    known at compile time, so rounding (and optional cost metering) is
    emitted only where needed and costs nothing elsewhere. *)

exception Compile_error of string

type t

val compile :
  ?builtins:Builtins.t ->
  ?config:Cheffp_precision.Config.t ->
  ?mode:Cheffp_precision.Config.rounding_mode ->
  ?counter:Cheffp_precision.Cost.Counter.t ->
  ?optimize:bool ->
  prog:Ast.program ->
  func:string ->
  unit ->
  t
(** [optimize] (default [true]) runs {!Optimize.optimize_func} first.
    [mode] defaults to [Source], matching {!Interp.run}. *)

val run : t -> Interp.arg list -> Interp.result
(** Execute the compiled function. The same compiled value can be run
    many times; arrays passed as arguments are shared and mutated. *)

val run_float : t -> Interp.arg list -> float
