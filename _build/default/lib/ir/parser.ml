open Ast

exception Error of string

type stream = { toks : Lexer.t array; mutable pos : int }

let cur s = s.toks.(s.pos)

let fail s fmt =
  let { Lexer.tok; line; col } = cur s in
  Format.kasprintf
    (fun msg ->
      raise
        (Error
           (Printf.sprintf "line %d, col %d: %s (found %s)" line col msg
              (Lexer.token_to_string tok))))
    fmt

let advance s = s.pos <- s.pos + 1

let eat s tok =
  if cur s |> fun t -> t.Lexer.tok = tok then advance s
  else fail s "expected %s" (Lexer.token_to_string tok)

let eat_ident s =
  match (cur s).Lexer.tok with
  | Lexer.IDENT name ->
      advance s;
      name
  | _ -> fail s "expected an identifier"

let accept s tok =
  if (cur s).Lexer.tok = tok then begin
    advance s;
    true
  end
  else false

let scalar_of_name s = function
  | "int" -> Sint
  | "f16" -> Sflt Cheffp_precision.Fp.F16
  | "f32" -> Sflt Cheffp_precision.Fp.F32
  | "f64" -> Sflt Cheffp_precision.Fp.F64
  | other -> fail s "unknown type %S (expected int, f16, f32, f64)" other

(* ---------------- expressions ---------------- *)

let rec parse_or s =
  let lhs = ref (parse_and s) in
  while accept s Lexer.OROR do
    lhs := Binop (Or, !lhs, parse_and s)
  done;
  !lhs

and parse_and s =
  let lhs = ref (parse_eq s) in
  while accept s Lexer.ANDAND do
    lhs := Binop (And, !lhs, parse_eq s)
  done;
  !lhs

and parse_eq s =
  let lhs = ref (parse_rel s) in
  let continue = ref true in
  while !continue do
    match (cur s).Lexer.tok with
    | Lexer.EQEQ ->
        advance s;
        lhs := Binop (Eq, !lhs, parse_rel s)
    | Lexer.NEQ ->
        advance s;
        lhs := Binop (Ne, !lhs, parse_rel s)
    | _ -> continue := false
  done;
  !lhs

and parse_rel s =
  let lhs = ref (parse_add s) in
  let continue = ref true in
  while !continue do
    match (cur s).Lexer.tok with
    | Lexer.LT ->
        advance s;
        lhs := Binop (Lt, !lhs, parse_add s)
    | Lexer.LE ->
        advance s;
        lhs := Binop (Le, !lhs, parse_add s)
    | Lexer.GT ->
        advance s;
        lhs := Binop (Gt, !lhs, parse_add s)
    | Lexer.GE ->
        advance s;
        lhs := Binop (Ge, !lhs, parse_add s)
    | _ -> continue := false
  done;
  !lhs

and parse_add s =
  let lhs = ref (parse_mul s) in
  let continue = ref true in
  while !continue do
    match (cur s).Lexer.tok with
    | Lexer.PLUS ->
        advance s;
        lhs := Binop (Add, !lhs, parse_mul s)
    | Lexer.MINUS ->
        advance s;
        lhs := Binop (Sub, !lhs, parse_mul s)
    | _ -> continue := false
  done;
  !lhs

and parse_mul s =
  let lhs = ref (parse_unary s) in
  let continue = ref true in
  while !continue do
    match (cur s).Lexer.tok with
    | Lexer.STAR ->
        advance s;
        lhs := Binop (Mul, !lhs, parse_unary s)
    | Lexer.SLASH ->
        advance s;
        lhs := Binop (Div, !lhs, parse_unary s)
    | Lexer.PERCENT ->
        advance s;
        lhs := Binop (Mod, !lhs, parse_unary s)
    | _ -> continue := false
  done;
  !lhs

and parse_unary s =
  match (cur s).Lexer.tok with
  | Lexer.MINUS ->
      advance s;
      Unop (Neg, parse_unary s)
  | Lexer.BANG ->
      advance s;
      Unop (Not, parse_unary s)
  | _ -> parse_primary s

and parse_primary s =
  match (cur s).Lexer.tok with
  | Lexer.FLOAT_LIT x ->
      advance s;
      Fconst x
  | Lexer.INT_LIT n ->
      advance s;
      Iconst n
  | Lexer.LPAREN ->
      advance s;
      let e = parse_or s in
      eat s Lexer.RPAREN;
      e
  | Lexer.IDENT name -> (
      advance s;
      match (cur s).Lexer.tok with
      | Lexer.LPAREN ->
          advance s;
          let args = parse_args s in
          eat s Lexer.RPAREN;
          Call (name, args)
      | Lexer.LBRACKET ->
          advance s;
          let i = parse_or s in
          eat s Lexer.RBRACKET;
          Idx (name, i)
      | _ -> Var name)
  | _ -> fail s "expected an expression"

and parse_args s =
  if (cur s).Lexer.tok = Lexer.RPAREN then []
  else begin
    let first = parse_or s in
    let rest = ref [] in
    while accept s Lexer.COMMA do
      rest := parse_or s :: !rest
    done;
    first :: List.rev !rest
  end

(* ---------------- statements ---------------- *)

let parse_lvalue s =
  let name = eat_ident s in
  if accept s Lexer.LBRACKET then begin
    let i = parse_or s in
    eat s Lexer.RBRACKET;
    Lidx (name, i)
  end
  else Lvar name

let rec parse_stmt s =
  match (cur s).Lexer.tok with
  | Lexer.KW "var" ->
      advance s;
      let name = eat_ident s in
      eat s Lexer.COLON;
      let scalar = scalar_of_name s (eat_ident s) in
      let dty =
        if accept s Lexer.LBRACKET then begin
          let size = parse_or s in
          eat s Lexer.RBRACKET;
          Darr (scalar, size)
        end
        else Dscalar scalar
      in
      let init = if accept s Lexer.EQ then Some (parse_or s) else None in
      eat s Lexer.SEMI;
      Decl { name; dty; init }
  | Lexer.KW "if" ->
      advance s;
      eat s Lexer.LPAREN;
      let c = parse_or s in
      eat s Lexer.RPAREN;
      let t = parse_block s in
      let e =
        if accept s (Lexer.KW "else") then
          if (cur s).Lexer.tok = Lexer.KW "if" then [ parse_stmt s ]
          else parse_block s
        else []
      in
      If (c, t, e)
  | Lexer.KW "for" ->
      advance s;
      let var = eat_ident s in
      eat s (Lexer.KW "in");
      let lo = parse_or s in
      eat s Lexer.DOTDOT;
      let hi = parse_or s in
      let down = accept s (Lexer.KW "reversed") in
      let body = parse_block s in
      For { var; lo; hi; down; body }
  | Lexer.KW "while" ->
      advance s;
      eat s Lexer.LPAREN;
      let c = parse_or s in
      eat s Lexer.RPAREN;
      let body = parse_block s in
      While (c, body)
  | Lexer.KW "return" ->
      advance s;
      if accept s Lexer.SEMI then Return None
      else begin
        let e = parse_or s in
        eat s Lexer.SEMI;
        Return (Some e)
      end
  | Lexer.KW "push" ->
      advance s;
      let lv = parse_lvalue s in
      eat s Lexer.SEMI;
      Push lv
  | Lexer.KW "pop" ->
      advance s;
      let lv = parse_lvalue s in
      eat s Lexer.SEMI;
      Pop lv
  | Lexer.IDENT name -> (
      advance s;
      match (cur s).Lexer.tok with
      | Lexer.LPAREN ->
          advance s;
          let args = parse_args s in
          eat s Lexer.RPAREN;
          eat s Lexer.SEMI;
          Call_stmt (name, args)
      | Lexer.LBRACKET ->
          advance s;
          let i = parse_or s in
          eat s Lexer.RBRACKET;
          eat s Lexer.EQ;
          let e = parse_or s in
          eat s Lexer.SEMI;
          Assign (Lidx (name, i), e)
      | Lexer.EQ ->
          advance s;
          let e = parse_or s in
          eat s Lexer.SEMI;
          Assign (Lvar name, e)
      | _ -> fail s "expected '=', '[' or '(' after %S" name)
  | _ -> fail s "expected a statement"

and parse_block s =
  eat s Lexer.LBRACE;
  let stmts = ref [] in
  while (cur s).Lexer.tok <> Lexer.RBRACE do
    stmts := parse_stmt s :: !stmts
  done;
  eat s Lexer.RBRACE;
  List.rev !stmts

let parse_param s =
  let pmode = if accept s (Lexer.KW "out") then Out else In in
  let pname = eat_ident s in
  eat s Lexer.COLON;
  let scalar = scalar_of_name s (eat_ident s) in
  let pty =
    if accept s Lexer.LBRACKET then begin
      eat s Lexer.RBRACKET;
      Tarr scalar
    end
    else Tscalar scalar
  in
  { pname; pty; pmode }

let parse_func s =
  eat s (Lexer.KW "func");
  let fname = eat_ident s in
  eat s Lexer.LPAREN;
  let params =
    if (cur s).Lexer.tok = Lexer.RPAREN then []
    else begin
      let first = parse_param s in
      let rest = ref [] in
      while accept s Lexer.COMMA do
        rest := parse_param s :: !rest
      done;
      first :: List.rev !rest
    end
  in
  eat s Lexer.RPAREN;
  eat s Lexer.COLON;
  let ret =
    if accept s (Lexer.KW "void") then None
    else Some (scalar_of_name s (eat_ident s))
  in
  let body = parse_block s in
  { fname; params; ret; body }

let stream_of src =
  try { toks = Array.of_list (Lexer.tokenize src); pos = 0 }
  with Lexer.Error msg -> raise (Error msg)

let parse_program src =
  let s = stream_of src in
  let funcs = ref [] in
  while (cur s).Lexer.tok <> Lexer.EOF do
    funcs := parse_func s :: !funcs
  done;
  { funcs = List.rev !funcs }

let parse_expr src =
  let s = stream_of src in
  let e = parse_or s in
  eat s Lexer.EOF;
  e
