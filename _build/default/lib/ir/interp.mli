(** Reference interpreter for MiniFP.

    The interpreter is precision-aware: under a mixed-precision
    configuration it rounds values bit-accurately to each variable's
    effective storage format (and, in [Source] rounding mode, rounds every
    operation to the format implied by its operands), and it can meter the
    modelled cost of the run through a {!Cheffp_precision.Cost.Counter}
    including implicit-cast charges. This is the engine used to measure
    the "actual error" and modelled speedup of mixed-precision
    configurations; the fast path for analysis runs is {!Compile}. *)

exception Runtime_error of string

type arg =
  | Aint of int
  | Aflt of float
  | Afarr of float array  (** shared with the callee: mutated in place *)
  | Aiarr of int array

type result = {
  ret : Builtins.value option;
  outs : (string * Builtins.value) list;
      (** final values of scalar [out] parameters, in parameter order *)
  stack_peak_bytes : int;
      (** high-water mark of the push/pop value stacks during the run *)
}

val effective_format :
  Cheffp_precision.Config.t -> Ast.scalar -> string -> Cheffp_precision.Fp.format
(** Storage format of a float variable: an explicit configuration override
    wins; otherwise a narrow declared type wins; otherwise the
    configuration default. Integers report [F64] (unused). *)

val run :
  ?builtins:Builtins.t ->
  ?config:Cheffp_precision.Config.t ->
  ?mode:Cheffp_precision.Config.rounding_mode ->
  ?counter:Cheffp_precision.Cost.Counter.t ->
  ?fuel:int ->
  prog:Ast.program ->
  func:string ->
  arg list ->
  result
(** [run ~prog ~func args] type-checks nothing (call {!Typecheck} first on
    untrusted input) and executes [func]. [mode] defaults to [Source].
    [fuel] bounds the number of executed statements (negative, the
    default, means unlimited) — a guard for untrusted programs with
    runaway [while] loops.
    @raise Runtime_error on arity/kind mismatches, undeclared names, or
    fuel exhaustion. *)

val run_float :
  ?builtins:Builtins.t ->
  ?config:Cheffp_precision.Config.t ->
  ?mode:Cheffp_precision.Config.rounding_mode ->
  ?counter:Cheffp_precision.Cost.Counter.t ->
  ?fuel:int ->
  prog:Ast.program ->
  func:string ->
  arg list ->
  float
(** Like {!run} but expects a float return value.
    @raise Runtime_error otherwise. *)
