(** User-function call inlining.

    The AD engine differentiates a single self-contained function, so
    calls to other MiniFP functions are inlined first (the paper handles
    calls "by analogy" in Clad; inlining is the analogous mechanism
    here). Inlinees must have their [return] (if any) as the final
    statement; recursion is rejected via a depth limit. Calls inside
    [while] conditions cannot be hoisted and are rejected. *)

exception Error of string

val inline_func : ?max_depth:int -> Ast.program -> Ast.func -> Ast.func
(** Returns an equivalent function whose body contains no user-function
    calls. Intrinsics are untouched. [max_depth] defaults to 32. *)

val has_user_calls : Ast.program -> Ast.func -> bool
