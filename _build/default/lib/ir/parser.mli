(** Recursive-descent parser for MiniFP concrete syntax.

    Grammar sketch:
    {v
    program  := func*
    func     := "func" name "(" params ")" ":" (scalar | "void") block
    param    := ["out"] name ":" scalar ["[" "]"]
    scalar   := "int" | "f16" | "f32" | "f64"
    stmt     := "var" name ":" scalar ["[" expr "]"] ["=" expr] ";"
              | lvalue "=" expr ";"       | name "(" args ")" ";"
              | "if" "(" expr ")" block ["else" block]
              | "for" name "in" expr ".." expr ["reversed"] block
              | "while" "(" expr ")" block
              | "return" [expr] ";"      | "push" lvalue ";" | "pop" lvalue ";"
    v}
    Operator precedence follows C: [||] < [&&] < [==,!=] < [<,<=,>,>=]
    < [+,-] < [*,/,%] < unary [-,!]. Comments run [//] to end of line. *)

exception Error of string

val parse_program : string -> Ast.program
(** @raise Error with line/column context on malformed input. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (for tests and the CLI). *)
