(** Capture-avoiding variable renaming over MiniFP fragments.

    Substitution maps variable names to variable names (used by the
    inliner to wire parameters to arguments) or to whole expressions
    (used for [In] scalar arguments that are plain variables). *)

open Ast

type t = (string, expr) Hashtbl.t

let create () : t = Hashtbl.create 16
let add (t : t) name e = Hashtbl.replace t name e

let push (t : t) name e = Hashtbl.add t name e
(* Shadow an existing binding; [unwind] reveals it again. *)

let unwind (t : t) names = List.iter (Hashtbl.remove t) names

let rename_of (t : t) name =
  match Hashtbl.find_opt t name with
  | Some (Var v) -> v
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Subst: %S must map to a variable in this position" name)
  | None -> name

let rec expr (t : t) = function
  | Fconst _ | Iconst _ as e -> e
  | Var v -> ( match Hashtbl.find_opt t v with Some e -> e | None -> Var v)
  | Idx (a, i) -> Idx (rename_of t a, expr t i)
  | Unop (op, e) -> Unop (op, expr t e)
  | Binop (op, a, b) -> Binop (op, expr t a, expr t b)
  | Call (f, args) -> Call (f, List.map (expr t) args)

let lvalue (t : t) = function
  | Lvar v -> Lvar (rename_of t v)
  | Lidx (a, i) -> Lidx (rename_of t a, expr t i)

let rec stmt (t : t) = function
  | Decl { name; dty; init } ->
      let dty =
        match dty with
        | Dscalar _ as d -> d
        | Darr (s, size) -> Darr (s, expr t size)
      in
      Decl { name = rename_of t name; dty; init = Option.map (expr t) init }
  | Assign (lv, e) -> Assign (lvalue t lv, expr t e)
  | If (c, a, b) -> If (expr t c, stmts t a, stmts t b)
  | For { var; lo; hi; down; body } ->
      For
        {
          var = rename_of t var;
          lo = expr t lo;
          hi = expr t hi;
          down;
          body = stmts t body;
        }
  | While (c, body) -> While (expr t c, stmts t body)
  | Return e -> Return (Option.map (expr t) e)
  | Call_stmt (f, args) -> Call_stmt (f, List.map (expr t) args)
  | Push lv -> Push (lvalue t lv)
  | Pop lv -> Pop (lvalue t lv)

and stmts t l = List.map (stmt t) l
