(** Hand-written lexer for MiniFP concrete syntax. *)

type token =
  | IDENT of string
  | INT_LIT of int
  | FLOAT_LIT of float
  | KW of string  (** func var if else for in while return out reversed push pop void *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | DOTDOT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ  (** [=] *)
  | EQEQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | EOF

type t = { tok : token; line : int; col : int }

exception Error of string
(** Carries a message with line/column. *)

val tokenize : string -> t list
(** Comments run from [//] to end of line. *)

val token_to_string : token -> string
