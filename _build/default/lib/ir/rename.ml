(** Fresh-name generation shared by the transformation passes. *)

type t = { used : (string, unit) Hashtbl.t }

let create () = { used = Hashtbl.create 64 }

let reserve t name = Hashtbl.replace t.used name ()
let mem t name = Hashtbl.mem t.used name

let reserve_func t (f : Ast.func) =
  let rec stmt = function
    | Ast.Decl { name; _ } -> reserve t name
    | Ast.For { var; body; _ } ->
        reserve t var;
        List.iter stmt body
    | Ast.If (_, a, b) ->
        List.iter stmt a;
        List.iter stmt b
    | Ast.While (_, body) -> List.iter stmt body
    | Ast.Assign _ | Ast.Return _ | Ast.Call_stmt _ | Ast.Push _ | Ast.Pop _ ->
        ()
  in
  List.iter (fun p -> reserve t p.Ast.pname) f.params;
  List.iter stmt f.body

let fresh t base =
  if not (Hashtbl.mem t.used base) then begin
    reserve t base;
    base
  end
  else begin
    let rec go k =
      let candidate = Printf.sprintf "%s_%d" base k in
      if Hashtbl.mem t.used candidate then go (k + 1)
      else begin
        reserve t candidate;
        candidate
      end
    in
    go 1
  end
