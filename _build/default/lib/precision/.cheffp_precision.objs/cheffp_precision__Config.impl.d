lib/precision/config.ml: Format Fp List Map String
