lib/precision/fp.mli: Format
