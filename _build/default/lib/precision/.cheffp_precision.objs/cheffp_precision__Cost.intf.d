lib/precision/cost.mli: Fp
