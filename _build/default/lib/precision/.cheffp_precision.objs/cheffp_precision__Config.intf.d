lib/precision/config.mli: Format Fp
