lib/precision/fp.ml: Float Format Int32
