lib/precision/cost.ml: Fp
