(** Operation cost model for modelled mixed-precision speedups.

    OCaml has no native narrow floats, so the runtime gain of demoting a
    variable cannot be observed directly; instead the interpreter meters
    every arithmetic operation through this model. The default model is
    calibrated to contemporary x86 behaviour: a narrow operation costs
    half of the next wider one (SIMD width doubling), divisions and square
    roots are several times a multiply, transcendental calls an order of
    magnitude more, and precision casts carry a small penalty — the
    type-cast overhead the paper's §V-B discusses. Approximate intrinsics
    (FastApprox) are charged a fraction of their exact counterparts. *)

type op_class =
  | Basic  (** add, sub, mul, negate, compare, abs, min, max *)
  | Division
  | Square_root
  | Transcendental  (** exp, log, sin, cos, tan, pow, ... *)

val op_class_of_intrinsic : string -> op_class
(** Classifies an intrinsic by name; unknown names are [Transcendental]. *)

type t

val default : t

val make :
  ?basic:float ->
  ?division:float ->
  ?square_root:float ->
  ?transcendental:float ->
  ?cast:float ->
  ?narrow_factor:float ->
  ?approx_discount:float ->
  unit ->
  t
(** Base costs are for binary64; an operation in format [f] costs
    [base * narrow_factor^(steps below F64)]. [cast] is the cost of one
    precision conversion; [approx_discount] multiplies the cost of an
    approximate intrinsic relative to its exact version. *)

val op : t -> Fp.format -> op_class -> float
val cast : t -> float
val approx : t -> op_class -> float
(** Cost of an approximate (FastApprox-style) intrinsic of the class. *)

(** Mutable accumulator threaded through an interpreter run. *)
module Counter : sig
  type model = t
  type t

  val create : model -> t
  val model : t -> model
  val charge_op : t -> Fp.format -> op_class -> unit
  val charge_cast : t -> unit
  val charge_approx : t -> op_class -> unit
  val total : t -> float
  val casts : t -> int
  (** Number of precision casts charged: the paper's implicit-cast
      counter (§V-B, "Quantifying overhead of type-casts"). *)

  val ops : t -> int
  val reset : t -> unit
end
