(** Mixed-precision configurations: which storage format each program
    variable uses.

    A configuration assigns a {!Fp.format} to named variables, with a
    default for everything unnamed. The mixed-precision interpreter rounds
    every store into a variable to that variable's format; the tuner
    searches the space of configurations. *)

type t

val uniform : Fp.format -> t
(** Every variable uses the given format. *)

val double : t
(** [uniform F64]: the reference configuration. *)

val demote : t -> string -> Fp.format -> t
(** [demote cfg var fmt] assigns [fmt] to [var] (replacing any previous
    assignment). *)

val demote_all : t -> string list -> Fp.format -> t
val format_of : t -> string -> Fp.format
val has_override : t -> string -> bool
val default_format : t -> Fp.format

val demoted : t -> (string * Fp.format) list
(** Explicit per-variable assignments, sorted by variable name. *)

val is_uniform_double : t -> bool

type rounding_mode = Source | Extended
(** [Source] rounds every operation to the precision implied by its
    operands' source types, the behaviour of [-fp-model source] that the
    paper recommends (§V-B): an operation on two demoted values is
    performed natively in the narrow format. [Extended] keeps all
    intermediates in binary64 and rounds only on stores into demoted
    variables. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
