(** IEEE 754 binary formats and bit-accurate rounding.

    OCaml's native [float] is IEEE 754 binary64. Lower precisions are
    emulated by rounding a binary64 value to the nearest representable
    binary32/binary16 value (round-to-nearest, ties-to-even), then
    widening back — the standard "shadow value" technique used by
    mixed-precision analysis tools. *)

type format = F16 | F32 | F64

val pp_format : Format.formatter -> format -> unit
val format_to_string : format -> string
val format_of_string : string -> format option
val equal_format : format -> format -> bool

val bits : format -> int
(** Total storage bits: 16, 32, 64. *)

val bytes : format -> int

val mantissa_bits : format -> int
(** Explicit significand bits: 10, 23, 52. *)

val epsilon : format -> float
(** Spacing of representable values at 1.0: [2^-mantissa_bits]. *)

val unit_roundoff : format -> float
(** Maximum relative representation error under round-to-nearest:
    [epsilon / 2]. This is the paper's machine epsilon [eps_m]. *)

val round : format -> float -> float
(** [round fmt x] is the nearest [fmt]-representable value to [x]
    (ties-to-even), widened back to binary64. Overflow yields the
    correctly-signed infinity; NaN is preserved. [round F64] is the
    identity. *)

val representable : format -> float -> bool
(** [representable fmt x] iff [round fmt x = x] (with NaN representable). *)

val representation_error : format -> float -> float
(** [x -. round fmt x]: the paper's ADAPT error term [x - (float)x]. *)

val ulp : format -> float -> float
(** Unit in the last place of [x] in [fmt] (for finite nonzero [x]). *)

val max_finite : format -> float
(** Largest finite representable value: 65504 for [F16],
    (2 - 2^-23) * 2^127 for [F32], [max_float] for [F64]. *)
