module Smap = Map.Make (String)

type t = { default : Fp.format; overrides : Fp.format Smap.t }

let uniform fmt = { default = fmt; overrides = Smap.empty }
let double = uniform Fp.F64
let demote cfg var fmt = { cfg with overrides = Smap.add var fmt cfg.overrides }

let demote_all cfg vars fmt =
  List.fold_left (fun acc v -> demote acc v fmt) cfg vars

let format_of cfg var =
  match Smap.find_opt var cfg.overrides with
  | Some fmt -> fmt
  | None -> cfg.default

let has_override cfg var = Smap.mem var cfg.overrides
let default_format cfg = cfg.default
let demoted cfg = Smap.bindings cfg.overrides

let is_uniform_double cfg =
  Fp.equal_format cfg.default Fp.F64
  && Smap.for_all (fun _ fmt -> Fp.equal_format fmt Fp.F64) cfg.overrides

type rounding_mode = Source | Extended

let pp ppf cfg =
  Format.fprintf ppf "default=%a" Fp.pp_format cfg.default;
  Smap.iter
    (fun var fmt -> Format.fprintf ppf " %s:%a" var Fp.pp_format fmt)
    cfg.overrides

let to_string cfg = Format.asprintf "%a" pp cfg
