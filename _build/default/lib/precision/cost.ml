type op_class = Basic | Division | Square_root | Transcendental

let op_class_of_intrinsic = function
  | "sqrt" -> Square_root
  | "abs" | "fabs" | "min" | "max" | "floor" | "ceil" -> Basic
  | _ -> Transcendental

type t = {
  basic : float;
  division : float;
  square_root : float;
  transcendental : float;
  cast_cost : float;
  narrow_factor : float;
  approx_discount : float;
}

let make ?(basic = 1.0) ?(division = 4.0) ?(square_root = 4.0)
    ?(transcendental = 10.0) ?(cast = 0.25) ?(narrow_factor = 0.5)
    ?(approx_discount = 0.25) () =
  {
    basic;
    division;
    square_root;
    transcendental;
    cast_cost = cast;
    narrow_factor;
    approx_discount;
  }

let default = make ()

let base t = function
  | Basic -> t.basic
  | Division -> t.division
  | Square_root -> t.square_root
  | Transcendental -> t.transcendental

let steps_below_f64 = function Fp.F64 -> 0 | Fp.F32 -> 1 | Fp.F16 -> 2

let op t fmt cls =
  base t cls *. (t.narrow_factor ** float_of_int (steps_below_f64 fmt))

let cast t = t.cast_cost
let approx t cls = base t cls *. t.approx_discount

module Counter = struct
  type model = t

  type nonrec t = {
    model : model;
    mutable total : float;
    mutable casts : int;
    mutable ops : int;
  }

  let create model = { model; total = 0.; casts = 0; ops = 0 }
  let model c = c.model

  let charge_op c fmt cls =
    c.total <- c.total +. op c.model fmt cls;
    c.ops <- c.ops + 1

  let charge_cast c =
    c.total <- c.total +. cast c.model;
    c.casts <- c.casts + 1

  let charge_approx c cls =
    c.total <- c.total +. approx c.model cls;
    c.ops <- c.ops + 1

  let total c = c.total
  let casts c = c.casts
  let ops c = c.ops

  let reset c =
    c.total <- 0.;
    c.casts <- 0;
    c.ops <- 0
end
