type format = F16 | F32 | F64

let format_to_string = function F16 -> "f16" | F32 -> "f32" | F64 -> "f64"
let pp_format ppf f = Format.pp_print_string ppf (format_to_string f)

let format_of_string = function
  | "f16" | "half" -> Some F16
  | "f32" | "float" | "single" -> Some F32
  | "f64" | "double" -> Some F64
  | _ -> None

let equal_format (a : format) b = a = b
let bits = function F16 -> 16 | F32 -> 32 | F64 -> 64
let bytes f = bits f / 8
let mantissa_bits = function F16 -> 10 | F32 -> 23 | F64 -> 52
let epsilon f = Float.ldexp 1.0 (-mantissa_bits f)
let unit_roundoff f = epsilon f /. 2.

let round_f32 x = Int32.float_of_bits (Int32.bits_of_float x)

(* Round a binary64 to binary16 with round-to-nearest-even, widening the
   result back to binary64. Goes through binary32 first (exact for the
   purposes of binary16 rounding because every binary16-boundary case is
   exactly representable in binary32... which is NOT true for double
   rounding in general), so instead we round the binary64 directly using
   its bit pattern. *)
let round_f16 x =
  if Float.is_nan x then x
  else if x = 0. then x (* preserves signed zero *)
  else begin
    let sign = if Float.sign_bit x then -1.0 else 1.0 in
    let ax = Float.abs x in
    let max_f16 = 65504.0 in
    (* Halfway point between max finite (65504) and "next" (65536): values
       at or above round to infinity under RNE. *)
    if ax >= 65520.0 then sign *. Float.infinity
    else if ax < 0x1p-25 then sign *. 0.0 (* below half of min subnormal *)
    else begin
      let rounded =
        if ax < 0x1p-14 then begin
          (* Subnormal range: quantum is 2^-24. Scale so the quantum
             becomes 1.0, round to integer (RNE via Float.round-to-even
             emulation), scale back. *)
          let scaled = ax *. 0x1p24 in
          let lo = Float.of_int (int_of_float (Float.floor scaled)) in
          let frac = scaled -. lo in
          let snapped =
            if frac > 0.5 then lo +. 1.
            else if frac < 0.5 then lo
            else if Float.rem lo 2. = 0. then lo
            else lo +. 1.
          in
          snapped *. 0x1p-24
        end else begin
          (* Normal range: exponent e with 2^e <= ax < 2^(e+1); quantum is
             2^(e-10). *)
          let _, e = Float.frexp ax in
          let e = e - 1 in
          let quantum = Float.ldexp 1.0 (e - 10) in
          let scaled = ax /. quantum in
          let lo = Float.of_int (int_of_float (Float.floor scaled)) in
          let frac = scaled -. lo in
          let snapped =
            if frac > 0.5 then lo +. 1.
            else if frac < 0.5 then lo
            else if Float.rem lo 2. = 0. then lo
            else lo +. 1.
          in
          snapped *. quantum
        end
      in
      let rounded = if rounded > max_f16 then Float.infinity else rounded in
      sign *. rounded
    end
  end

let round fmt x =
  match fmt with F64 -> x | F32 -> round_f32 x | F16 -> round_f16 x

let representable fmt x = Float.is_nan x || round fmt x = x
let representation_error fmt x = x -. round fmt x

let ulp fmt x =
  match fmt with
  | F64 -> Float.succ (Float.abs x) -. Float.abs x
  | F32 | F16 ->
      let ax = Float.abs x in
      if ax = 0. || Float.is_nan ax || ax = Float.infinity then epsilon fmt
      else
        let _, e = Float.frexp ax in
        Float.ldexp 1.0 (e - 1 - mantissa_bits fmt)

let max_finite = function
  | F64 -> Float.max_float
  | F32 -> Int32.float_of_bits 0x7F7FFFFFl
  | F16 -> 65504.0
