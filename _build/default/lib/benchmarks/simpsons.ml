open Cheffp_ir

let source =
  {|
// Composite Simpson's rule for the integral of sin over [a, b].
func simpsons(a: f64, b: f64, n: int): f64 {
  var h: f64 = (b - a) / (2.0 * itof(n));
  var s: f64 = sin(a) + sin(b);
  var x: f64;
  for i in 1 .. 2 * n {
    x = a + itof(i) * h;
    if (i % 2 == 1) {
      s = s + 4.0 * sin(x);
    } else {
      s = s + 2.0 * sin(x);
    }
  }
  return s * h / 3.0;
}
|}

let program = Parser.parse_program source
let func_name = "simpsons"
let () = Typecheck.check_program program
let args ~a ~b ~n = [ Interp.Aflt a; Interp.Aflt b; Interp.Aint n ]

module Native (N : Cheffp_adapt.Num.NUM) = struct
  let run ~a ~b ~n =
    let a = N.input "a" a and b = N.input "b" b in
    let h = N.(register "h" ((b - a) / (of_float 2. * of_int n))) in
    let s = ref N.(register "s" (sin a + sin b)) in
    for i = 1 to (2 * n) - 1 do
      let x = N.(register "x" (a + (of_int i * h))) in
      if i mod 2 = 1 then s := N.(register "s" (!s + (of_float 4. * sin x)))
      else s := N.(register "s" (!s + (of_float 2. * sin x)))
    done;
    N.(!s * h / of_float 3.)
end

module Ref = Native (Cheffp_adapt.Num.Float_num)

let reference ~a ~b ~n = Ref.run ~a ~b ~n
