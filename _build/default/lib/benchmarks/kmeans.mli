(** k-Means clustering benchmark (paper §IV-3, Rodinia).

    The instrumented hotspot is the Euclidean-distance kernel; the
    analyzed function accumulates each point's distance to its nearest
    cluster centre, exposing the three variables of Table III:
    [attributes] (the input data), [clusters] (the centres) and [sum]
    (the per-pair accumulator).

    The workload mimics Rodinia's: attribute values carry four decimal
    digits and are stored as binary32 by the reader, so they are exactly
    float-representable and their demotion error is zero (Table III row
    1); cluster centres are computed means and are not. *)

open Cheffp_ir

type workload = {
  attributes : float array;  (** npoints * nfeatures, row-major *)
  clusters : float array;  (** nclusters * nfeatures *)
  npoints : int;
  nclusters : int;
  nfeatures : int;
}

val generate :
  ?seed:int64 -> npoints:int -> ?nclusters:int -> ?nfeatures:int -> unit -> workload

val source : string
val program : Ast.program
val func_name : string
val args : workload -> Interp.arg list

module Native (N : Cheffp_adapt.Num.NUM) : sig
  val run : workload -> N.t
end

val reference : workload -> float

(** Full Lloyd's clustering (for app-level mixed-precision checks). *)

type clustering = {
  assignments : int array;
  centroids : float array;
  iterations : int;
  changed_last : int;
}

val default_distance :
  workload ->
  point:int ->
  centroid:int ->
  float array ->
  float array ->
  float

val rounded_distance :
  Cheffp_precision.Fp.format ->
  workload ->
  point:int ->
  centroid:int ->
  float array ->
  float array ->
  float
(** Distance with every store rounded to the format: the euclid kernel
    with [clusters] and [sum] demoted. *)

val cluster :
  ?max_iter:int ->
  ?distance:
    (point:int -> centroid:int -> float array -> float array -> float) ->
  workload ->
  clustering
(** Lloyd's iterations from the workload's initial centres until
    assignments stabilise or [max_iter] (default 20). *)
