lib/benchmarks/kmeans.ml: Array Cheffp_adapt Cheffp_ir Cheffp_precision Cheffp_util Float Interp Parser Typecheck
