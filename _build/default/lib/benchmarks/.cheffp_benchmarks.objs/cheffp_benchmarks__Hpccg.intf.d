lib/benchmarks/hpccg.mli: Ast Cheffp_adapt Cheffp_ir Cheffp_sparse Interp
