lib/benchmarks/fpcore.ml: Cheffp_ir Interp List Parser Typecheck
