lib/benchmarks/blackscholes.mli: Ast Cheffp_adapt Cheffp_ir Interp
