lib/benchmarks/fpcore.mli: Ast Cheffp_ir Interp
