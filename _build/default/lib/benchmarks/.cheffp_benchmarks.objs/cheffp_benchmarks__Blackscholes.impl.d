lib/benchmarks/blackscholes.ml: Array Ast Builtins Cheffp_adapt Cheffp_fastapprox Cheffp_ir Cheffp_util Float Interp Lazy List Normalize Parser Printf String Typecheck
