lib/benchmarks/arclength.ml: Cheffp_adapt Cheffp_ir Float Interp Parser Typecheck
