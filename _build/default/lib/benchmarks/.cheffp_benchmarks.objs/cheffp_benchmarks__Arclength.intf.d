lib/benchmarks/arclength.mli: Ast Cheffp_adapt Cheffp_ir Interp
