lib/benchmarks/hpccg.ml: Array Cheffp_adapt Cheffp_ir Cheffp_sparse Interp Parser Typecheck
