lib/benchmarks/simpsons.mli: Ast Cheffp_adapt Cheffp_ir Interp
