lib/benchmarks/simpsons.ml: Cheffp_adapt Cheffp_ir Interp Parser Typecheck
