lib/benchmarks/kmeans.mli: Ast Cheffp_adapt Cheffp_ir Cheffp_precision Interp
