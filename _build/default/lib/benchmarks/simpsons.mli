(** Simpsons benchmark (paper §IV-2): composite Simpson's rule for
    int_a^b f(x) dx with f(x) = sin(x), 2n subintervals. Table I runs it
    with threshold 1e-6; Fig. 5 sweeps [n]. *)

open Cheffp_ir

val source : string
val program : Ast.program
val func_name : string
val args : a:float -> b:float -> n:int -> Interp.arg list

module Native (N : Cheffp_adapt.Num.NUM) : sig
  val run : a:float -> b:float -> n:int -> N.t
end

val reference : a:float -> b:float -> n:int -> float
