open Cheffp_ir

type kernel = {
  name : string;
  func_name : string;
  source : string;
  args : Interp.arg list;
  description : string;
}

let k name func_name description source args =
  { name; func_name; source; args; description }

let kernels =
  [
    k "doppler" "doppler" "Doppler frequency shift (FPBench doppler1)"
      {|
func doppler(u: f64, v: f64, t: f64): f64 {
  var t1: f64 = 331.4 + 0.6 * t;
  var r: f64 = (-t1 * v) / ((t1 + u) * (t1 + u));
  return r;
}
|}
      [ Interp.Aflt (-30.); Interp.Aflt 10_000.; Interp.Aflt 25. ];
    k "jetengine" "jetengine" "Jet engine controller (FPBench jetEngine)"
      {|
func jetengine(x1: f64, x2: f64): f64 {
  var t: f64 = 3.0 * x1 * x1 + 2.0 * x2 - x1;
  var d: f64 = x1 * x1 + 1.0;
  var s: f64 = t / d;
  var s2: f64 = (3.0 * x1 * x1 - 2.0 * x2 - x1) / d;
  var r: f64 = x1 + (2.0 * x1 * s * (s - 3.0) + x1 * x1 * (4.0 * s - 6.0)) * d
               + 3.0 * x1 * x1 * s + x1 * x1 * x1 + x1 + 3.0 * s2;
  return r;
}
|}
      [ Interp.Aflt 2.1; Interp.Aflt 10.3 ];
    k "turbine1" "turbine1" "Turbine blade model, first component"
      {|
func turbine1(v: f64, w: f64, r: f64): f64 {
  var res: f64 = 3.0 + 2.0 / (r * r)
                 - 0.125 * (3.0 - 2.0 * v) * (w * w * r * r) / (1.0 - v)
                 - 4.5;
  return res;
}
|}
      [ Interp.Aflt (-3.5); Interp.Aflt 0.6; Interp.Aflt 5.7 ];
    k "verhulst" "verhulst" "Verhulst population model"
      {|
func verhulst(x: f64): f64 {
  var r: f64 = 4.0;
  var kk: f64 = 1.11;
  return (r * x) / (1.0 + x / kk);
}
|}
      [ Interp.Aflt 0.19 ];
    k "predatorprey" "predatorprey" "Predator-prey equilibrium term"
      {|
func predatorprey(x: f64): f64 {
  var r: f64 = 4.0;
  var kk: f64 = 1.11;
  return (r * x * x) / (1.0 + (x / kk) * (x / kk));
}
|}
      [ Interp.Aflt 0.23 ];
    k "carbongas" "carbongas" "Van der Waals carbon gas state equation"
      {|
func carbongas(v: f64): f64 {
  var p: f64 = 35000000.0;
  var a: f64 = 0.401;
  var b: f64 = 0.0000427;
  var t: f64 = 300.0;
  var n: f64 = 1000.0;
  var kb: f64 = 0.000000000000000000000013806503;
  return (p + a * (n / v) * (n / v)) * (v - n * b) - kb * n * t;
}
|}
      [ Interp.Aflt 0.1 ];
    k "rigidbody1" "rigidbody1" "Rigid body kinematics, first polynomial"
      {|
func rigidbody1(x1: f64, x2: f64, x3: f64): f64 {
  return -(x1 * x2) - 2.0 * (x2 * x3) - x1 - x3;
}
|}
      [ Interp.Aflt 7.1; Interp.Aflt (-5.5); Interp.Aflt 12.2 ];
    k "rigidbody2" "rigidbody2" "Rigid body kinematics, second polynomial"
      {|
func rigidbody2(x1: f64, x2: f64, x3: f64): f64 {
  return 2.0 * (x1 * x2 * x3) + (3.0 * x3 * x3)
         - x2 * (x1 * x2 * x3) + (3.0 * x3 * x3) - x2;
}
|}
      [ Interp.Aflt 7.1; Interp.Aflt (-5.5); Interp.Aflt 12.2 ];
    k "sine" "sine_taylor" "Taylor expansion of sine"
      {|
func sine_taylor(x: f64): f64 {
  return x - (x * x * x) / 6.0 + (x * x * x * x * x) / 120.0
         - (x * x * x * x * x * x * x) / 5040.0;
}
|}
      [ Interp.Aflt 1.26 ];
    k "sqroot" "sqroot" "Taylor expansion of sqrt(1+x)"
      {|
func sqroot(x: f64): f64 {
  return 1.0 + 0.5 * x - 0.125 * x * x + 0.0625 * x * x * x
         - 0.0390625 * x * x * x * x;
}
|}
      [ Interp.Aflt 0.77 ];
    k "nmse331" "nmse331" "Numerical methods: 1/(x+1) - 1/x cancellation"
      {|
func nmse331(x: f64): f64 {
  return 1.0 / (x + 1.0) - 1.0 / x;
}
|}
      [ Interp.Aflt 177.5 ];
    k "logistic_iter" "logistic_iter" "Iterated logistic map (loop kernel)"
      {|
func logistic_iter(x0: f64, n: int): f64 {
  var x: f64 = x0;
  for i in 0 .. n {
    x = 3.75 * x * (1.0 - x);
  }
  return x;
}
|}
      [ Interp.Aflt 0.31; Interp.Aint 15 ];
    k "horner" "horner" "Horner evaluation of a degree-8 polynomial"
      {|
func horner(x: f64, coeffs: f64[], n: int): f64 {
  var acc: f64 = 0.0;
  for i in 0 .. n reversed {
    acc = acc * x + coeffs[i];
  }
  return acc;
}
|}
      [
        Interp.Aflt 1.73;
        Interp.Afarr [| 0.3; -1.2; 0.07; 2.5; -0.33; 1.01; -0.5; 0.125; 0.9 |];
        Interp.Aint 9;
      ];
  ]

let program kern =
  let prog = Parser.parse_program kern.source in
  Typecheck.check_program prog;
  prog

let find name = List.find_opt (fun kern -> kern.name = name) kernels
