open Cheffp_ir

let source =
  {|
// Arc length of g(x) = x + sum_{k=1..5} 2^-k sin(2^k x) over [0, pi].
func arclength(n: int): f64 {
  var h: f64 = 3.141592653589793 / itof(n);
  var t1: f64 = 0.0;
  var t2: f64 = 0.0;
  var s1: f64 = 0.0;
  var x: f64;
  var fx: f64;
  var p2: f64;
  var d: f64;
  for i in 1 .. n + 1 {
    x = itof(i) * h;
    fx = x;
    p2 = 1.0;
    for k in 1 .. 6 {
      p2 = p2 * 2.0;
      fx = fx + sin(p2 * x) / p2;
    }
    t2 = fx;
    d = t2 - t1;
    s1 = s1 + sqrt(h * h + d * d);
    t1 = t2;
  }
  return s1;
}
|}

let program = Parser.parse_program source
let func_name = "arclength"
let () = Typecheck.check_program program
let args ~n = [ Interp.Aint n ]

module Native (N : Cheffp_adapt.Num.NUM) = struct
  let run ~n =
    let h = N.(register "h" (of_float Float.pi / of_int n)) in
    let t1 = ref (N.of_float 0.) in
    let s1 = ref (N.of_float 0.) in
    for i = 1 to n do
      let x = N.(register "x" (of_int i * h)) in
      let fx = ref x in
      let p2 = ref (N.of_float 1.) in
      for _k = 1 to 5 do
        p2 := N.(register "p2" (!p2 * of_float 2.));
        fx := N.(register "fx" (!fx + (sin (!p2 * x) / !p2)))
      done;
      let t2 = N.register "t2" !fx in
      let d = N.(register "d" (t2 - !t1)) in
      s1 := N.(register "s1" (!s1 + sqrt ((h * h) + (d * d))));
      t1 := N.register "t1" t2
    done;
    !s1
end

module Ref = Native (Cheffp_adapt.Num.Float_num)

let reference ~n = Ref.run ~n
