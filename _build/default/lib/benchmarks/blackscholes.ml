open Cheffp_ir
module Rng = Cheffp_util.Rng
module Fast = Cheffp_fastapprox.Fastapprox

type workload = {
  sptprice : float array;
  strike : float array;
  rate : float array;
  volatility : float array;
  otime : float array;
  otype : int array;
  n : int;
}

let generate ?(seed = 19730529L) ~n () =
  let rng = Rng.create seed in
  let sptprice = Array.init n (fun _ -> Rng.uniform rng ~lo:10. ~hi:100.) in
  {
    sptprice;
    strike =
      Array.init n (fun i -> sptprice.(i) *. Rng.uniform rng ~lo:0.6 ~hi:1.4);
    rate = Array.init n (fun _ -> Rng.uniform rng ~lo:0.01 ~hi:0.1);
    volatility = Array.init n (fun _ -> Rng.uniform rng ~lo:0.1 ~hi:0.6);
    otime = Array.init n (fun _ -> Rng.uniform rng ~lo:0.1 ~hi:3.0);
    otype = Array.init n (fun _ -> Rng.int rng 2);
    n;
  }

type config = Exact | Fast_log_sqrt | Fast_log_sqrt_exp

let config_name = function
  | Exact -> "exact"
  | Fast_log_sqrt -> "FastApprox w/o fast exp"
  | Fast_log_sqrt_exp -> "FastApprox w/ fast exp"

let fns = function
  | Exact -> ("log", "sqrt", "exp")
  | Fast_log_sqrt -> ("fastlog", "fastsqrt", "exp")
  | Fast_log_sqrt_exp -> ("fastlog", "fastsqrt", "fastexp")

let source config =
  let log_fn, sqrt_fn, exp_fn = fns config in
  Printf.sprintf
    {|
// PARSEC BlkSchlsEqEuroNoDiv with the CNDF polynomial approximation.
func cndf(xi: f64): f64 {
  var ax: f64 = xi;
  if (xi < 0.0) {
    ax = -xi;
  }
  var kc: f64 = 1.0 / (1.0 + 0.2316419 * ax);
  var kpoly: f64 = kc * (0.319381530 + kc * (-0.356563782 + kc * (1.781477937
                   + kc * (-1.821255978 + kc * 1.330274429))));
  var garg: f64 = -(0.5 * ax * ax);
  var w: f64 = 1.0 - 0.3989422804014327 * %s(garg) * kpoly;
  if (xi < 0.0) {
    w = 1.0 - w;
  }
  return w;
}

func bs_price(s: f64, k: f64, r: f64, v: f64, t: f64, otype: int): f64 {
  var tt: f64 = t;
  var sqrtt: f64 = %s(tt);
  var lsk: f64 = s / k;
  var d1: f64 = (%s(lsk) + (r + 0.5 * v * v) * t) / (v * sqrtt);
  var d2: f64 = d1 - v * sqrtt;
  var n1: f64 = cndf(d1);
  var n2: f64 = cndf(d2);
  var earg: f64 = -(r * t);
  var fut: f64 = k * %s(earg);
  var price: f64;
  if (otype == 0) {
    price = s * n1 - fut * n2;
  } else {
    price = fut * (1.0 - n2) - s * (1.0 - n1);
  }
  return price;
}

func blackscholes(sptprice: f64[], strike: f64[], rate: f64[],
                  volatility: f64[], otime: f64[], otype: int[], n: int): f64 {
  var total: f64 = 0.0;
  var pr: f64;
  for i in 0 .. n {
    pr = bs_price(sptprice[i], strike[i], rate[i], volatility[i], otime[i],
                  otype[i]);
    total = total + pr;
  }
  return total;
}
|}
    exp_fn sqrt_fn log_fn exp_fn

let builtins_with_fast =
  lazy
    (let b = Builtins.create () in
     Fast.register_builtins b;
     b)

let program config =
  let p = Parser.parse_program (source config) in
  Typecheck.check_program ~builtins:(Lazy.force builtins_with_fast) p;
  p

let func_name = "blackscholes"
let price_func = "bs_price"

let args w =
  [
    Interp.Afarr w.sptprice;
    Interp.Afarr w.strike;
    Interp.Afarr w.rate;
    Interp.Afarr w.volatility;
    Interp.Afarr w.otime;
    Interp.Aiarr w.otype;
    Interp.Aint w.n;
  ]

let price_args w i =
  [
    Interp.Aflt w.sptprice.(i);
    Interp.Aflt w.strike.(i);
    Interp.Aflt w.rate.(i);
    Interp.Aflt w.volatility.(i);
    Interp.Aflt w.otime.(i);
    Interp.Aint w.otype.(i);
  ]

(* Variables of interest for Algorithm 2: inputs of the approximated
   calls. Inlining may rename copies ([garg], [garg_1], ...), so the map
   is derived from the normalized exact program. *)
let approx_pairs config =
  let base =
    match config with
    | Exact -> []
    | Fast_log_sqrt -> [ ("lsk", "log"); ("tt", "sqrt") ]
    | Fast_log_sqrt_exp ->
        [ ("lsk", "log"); ("tt", "sqrt"); ("earg", "exp"); ("garg", "exp") ]
  in
  if base = [] then []
  else begin
    let prog = program Exact in
    let nf = Normalize.normalize_func prog (Ast.func_exn prog price_func) in
    let matches prefix name =
      name = prefix
      || String.length name > String.length prefix
         && String.sub name 0 (String.length prefix + 1) = prefix ^ "_"
    in
    List.concat_map
      (fun (prefix, intrinsic) ->
        List.filter_map
          (fun (name, _) ->
            if matches prefix name then Some (name, intrinsic) else None)
          (Normalize.locals nf))
      base
  end

let eval_exact intrinsic v =
  match intrinsic with
  | "log" -> log v
  | "sqrt" -> sqrt v
  | "exp" -> exp v
  | other -> invalid_arg ("Blackscholes.eval_exact: " ^ other)

let eval_approx intrinsic v =
  match intrinsic with
  | "log" -> Fast.fastlog v
  | "sqrt" -> Fast.fastsqrt v
  | "exp" -> Fast.fastexp v
  | other -> invalid_arg ("Blackscholes.eval_approx: " ^ other)

type mathset = {
  m_exp : float -> float;
  m_log : float -> float;
  m_sqrt : float -> float;
}

let mathset_of = function
  | Exact -> { m_exp = exp; m_log = log; m_sqrt = sqrt }
  | Fast_log_sqrt -> { m_exp = exp; m_log = Fast.fastlog; m_sqrt = Fast.fastsqrt }
  | Fast_log_sqrt_exp ->
      { m_exp = Fast.fastexp; m_log = Fast.fastlog; m_sqrt = Fast.fastsqrt }

let cndf_native m xi =
  let ax = Float.abs xi in
  let kc = 1. /. (1. +. (0.2316419 *. ax)) in
  let kpoly =
    kc
    *. (0.319381530
       +. kc
          *. (-0.356563782
             +. kc
                *. (1.781477937
                   +. (kc *. (-1.821255978 +. (kc *. 1.330274429))))))
  in
  let w = 1. -. (0.3989422804014327 *. m.m_exp (-.(0.5 *. ax *. ax)) *. kpoly) in
  if xi < 0. then 1. -. w else w

let price_native m ~s ~k ~r ~v ~t ~otype =
  let sqrtt = m.m_sqrt t in
  let d1 = (m.m_log (s /. k) +. ((r +. (0.5 *. v *. v)) *. t)) /. (v *. sqrtt) in
  let d2 = d1 -. (v *. sqrtt) in
  let n1 = cndf_native m d1 in
  let n2 = cndf_native m d2 in
  let fut = k *. m.m_exp (-.(r *. t)) in
  if otype = 0 then (s *. n1) -. (fut *. n2)
  else (fut *. (1. -. n2)) -. (s *. (1. -. n1))

module Native (N : Cheffp_adapt.Num.NUM) = struct
  let cndf xi =
    let negative = N.(xi < of_float 0.) in
    let ax = N.fabs xi in
    let kc =
      N.(
        register "kc" (of_float 1. / (of_float 1. + (of_float 0.2316419 * ax))))
    in
    let kpoly =
      N.(
        register "kpoly"
          (kc
          * (of_float 0.319381530
            + kc
              * (of_float (-0.356563782)
                + kc
                  * (of_float 1.781477937
                    + (kc * (of_float (-1.821255978) + (kc * of_float 1.330274429))))))))
    in
    let garg = N.(register "garg" (neg (of_float 0.5 * ax * ax))) in
    let w =
      N.(
        register "w"
          (of_float 1. - (of_float 0.3989422804014327 * exp garg * kpoly)))
    in
    if negative then N.(of_float 1. - w) else w

  let price ~s ~k ~r ~v ~t ~otype =
    let tt = N.register "tt" t in
    let sqrtt = N.(register "sqrtt" (sqrt tt)) in
    let lsk = N.(register "lsk" (s / k)) in
    let d1 =
      N.(
        register "d1"
          ((log lsk + ((r + (of_float 0.5 * v * v)) * t)) / (v * sqrtt)))
    in
    let d2 = N.(register "d2" (d1 - (v * sqrtt))) in
    let n1 = N.register "n1" (cndf d1) in
    let n2 = N.register "n2" (cndf d2) in
    let earg = N.(register "earg" (neg (r * t))) in
    let fut = N.(register "fut" (k * exp earg)) in
    if otype = 0 then N.((s * n1) - (fut * n2))
    else N.((fut * (of_float 1. - n2)) - (s * (of_float 1. - n1)))

  let run w =
    let total = ref (N.of_float 0.) in
    for i = 0 to w.n - 1 do
      let pr =
        price
          ~s:(N.input "sptprice" w.sptprice.(i))
          ~k:(N.input "strike" w.strike.(i))
          ~r:(N.input "rate" w.rate.(i))
          ~v:(N.input "volatility" w.volatility.(i))
          ~t:(N.input "otime" w.otime.(i))
          ~otype:w.otype.(i)
      in
      total := N.(register "total" (!total + pr))
    done;
    !total
end

module Ref = Native (Cheffp_adapt.Num.Float_num)

let reference w = Ref.run w
