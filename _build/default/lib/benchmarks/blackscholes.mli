(** Black-Scholes benchmark (paper §IV-5, PARSEC): European option
    pricing with the CNDF polynomial approximation. Used two ways:

    - Fig. 8: analysis time/memory of CHEF-FP vs ADAPT on the option-sum
      program, sweeping the number of options;
    - Table IV: the FastApprox study — swap [log]/[sqrt] (and optionally
      [exp]) for their FastApprox variants, estimate the approximation
      error per option with the Algorithm-2 custom model, and compare
      with the measured error.

    The MiniFP version exercises the inliner: [blackscholes] calls
    [bs_price], which calls [cndf] twice. *)

open Cheffp_ir

type workload = {
  sptprice : float array;
  strike : float array;
  rate : float array;
  volatility : float array;
  otime : float array;
  otype : int array;
  n : int;
}

val generate : ?seed:int64 -> n:int -> unit -> workload

type config = Exact | Fast_log_sqrt | Fast_log_sqrt_exp

val config_name : config -> string

val source : config -> string
val program : config -> Ast.program
val func_name : string
(** The aggregate entry point, ["blackscholes"]. *)

val price_func : string
(** The per-option entry point, ["bs_price"]. *)

val args : workload -> Interp.arg list
val price_args : workload -> int -> Interp.arg list
(** Arguments of [bs_price] for option [i]. *)

val approx_pairs : config -> (string * string) list
(** Variable-to-intrinsic map for {!Cheffp_core.Model.approx_functions}
    (Algorithm 2), derived from the normalized program so renamed inline
    copies are included. Empty for [Exact]. *)

val eval_exact : string -> float -> float
(** EVAL of Algorithm 2 for the intrinsics used here. *)

val eval_approx : string -> float -> float

(** Plain-float pricing with substitutable math, for measured errors. *)
type mathset = {
  m_exp : float -> float;
  m_log : float -> float;
  m_sqrt : float -> float;
}

val mathset_of : config -> mathset

val price_native :
  mathset -> s:float -> k:float -> r:float -> v:float -> t:float -> otype:int -> float

module Native (N : Cheffp_adapt.Num.NUM) : sig
  val run : workload -> N.t
  (** Exact math; sums all option prices (for the ADAPT/tape baseline). *)
end

val reference : workload -> float
