(** Arc Length benchmark (paper §IV-1).

    Approximates the length of g(x) = x + sum_{k=1..5} 2^-k sin(2^k x)
    over [0, pi] by summing straight-line segment lengths over [n]
    sample points — the classic mixed-precision study function (Bailey).
    The paper's Table I runs it with threshold 1e-5; Fig. 4 sweeps [n]. *)

open Cheffp_ir

val source : string
(** MiniFP text of the benchmark (parsed in {!program}). *)

val program : Ast.program
val func_name : string

val args : n:int -> Interp.arg list

module Native (N : Cheffp_adapt.Num.NUM) : sig
  val run : n:int -> N.t
end

val reference : n:int -> float
(** Plain-float result for cross-checking. *)
