(** HPCCG benchmark (paper §IV-4, Mantevo): conjugate gradient on the
    27-point-stencil "3D chimney" domain, single-threaded, fixed
    iteration count. The analyzed function runs the full CG main loop
    and returns the final residual norm; its per-iteration variable
    sensitivities reproduce Fig. 9 and drive the split-loop
    mixed-precision configuration of Table I. *)

open Cheffp_ir

type workload = {
  matrix : Cheffp_sparse.Csr.t;
  b : float array;
  x0 : float array;
  xexact : float array;
  max_iter : int;
}

val generate : nx:int -> ny:int -> nz:int -> ?max_iter:int -> unit -> workload
(** [max_iter] defaults to 150 (the HPCCG default). *)

val source : string
val program : Ast.program
val func_name : string

val args : workload -> Interp.arg list
(** Fresh copies of the mutable vectors are made on each call. *)

val source_split : string
(** The split-loop mixed-precision rewrite the paper derives from the
    Fig. 9 sensitivity profile: the first [cutoff] CG iterations run in
    binary64, the remainder entirely in binary32-typed state. *)

val program_split : Ast.program
val split_func_name : string
val split_args : workload -> cutoff:int -> Interp.arg list

module Native (N : Cheffp_adapt.Num.NUM) : sig
  val run : workload -> N.t
  (** Returns the solution norm sqrt(x.x). *)
end

val reference : workload -> float
