open Cheffp_ir
module Rng = Cheffp_util.Rng
module Fp = Cheffp_precision.Fp

type workload = {
  attributes : float array;
  clusters : float array;
  npoints : int;
  nclusters : int;
  nfeatures : int;
}

let generate ?(seed = 20230517L) ~npoints ?(nclusters = 5) ?(nfeatures = 4) ()
    =
  let rng = Rng.create seed in
  (* Rodinia-style data: four decimal digits, stored as binary32 by the
     file reader => exactly float-representable. *)
  let attributes =
    Array.init (npoints * nfeatures) (fun _ ->
        let v = Float.of_int (Rng.int rng 100000) /. 10000. in
        Fp.round Fp.F32 v)
  in
  (* Centres are means of random subsets: genuine doubles. *)
  let clusters = Array.make (nclusters * nfeatures) 0. in
  let members = 17 in
  for c = 0 to nclusters - 1 do
    for f = 0 to nfeatures - 1 do
      let acc = ref 0. in
      for _ = 1 to members do
        let p = Rng.int rng npoints in
        acc := !acc +. attributes.((p * nfeatures) + f)
      done;
      clusters.((c * nfeatures) + f) <- !acc /. float_of_int members
    done
  done;
  { attributes; clusters; npoints; nclusters; nfeatures }

let source =
  {|
// Total distance of every point to its nearest cluster centre
// (the Rodinia k-means euclid_dist hotspot, aggregated).
func kmeans_dist(attributes: f64[], clusters: f64[], npoints: int,
                 nclusters: int, nfeatures: int): f64 {
  var total: f64 = 0.0;
  var best: f64;
  var dist: f64;
  var sum: f64;
  var d: f64;
  for p in 0 .. npoints {
    best = 1.0e30;
    for c in 0 .. nclusters {
      sum = 0.0;
      for f in 0 .. nfeatures {
        d = attributes[p * nfeatures + f] - clusters[c * nfeatures + f];
        sum = sum + d * d;
      }
      dist = sqrt(sum);
      if (dist < best) {
        best = dist;
      }
    }
    total = total + best;
  }
  return total;
}
|}

let program = Parser.parse_program source
let func_name = "kmeans_dist"
let () = Typecheck.check_program program

let args w =
  [
    Interp.Afarr w.attributes;
    Interp.Afarr w.clusters;
    Interp.Aint w.npoints;
    Interp.Aint w.nclusters;
    Interp.Aint w.nfeatures;
  ]

module Native (N : Cheffp_adapt.Num.NUM) = struct
  let run w =
    let attributes =
      Array.map (fun v -> N.input "attributes" v) w.attributes
    in
    let clusters = Array.map (fun v -> N.input "clusters" v) w.clusters in
    let total = ref (N.of_float 0.) in
    for p = 0 to w.npoints - 1 do
      let best = ref (N.of_float 1.0e30) in
      for c = 0 to w.nclusters - 1 do
        let sum = ref (N.of_float 0.) in
        for f = 0 to w.nfeatures - 1 do
          let ai = (p * w.nfeatures) + f and ci = (c * w.nfeatures) + f in
          let d = N.(register "d" (attributes.(ai) - clusters.(ci))) in
          sum := N.(register "sum" (!sum + (d * d)))
        done;
        let dist = N.(register "dist" (sqrt !sum)) in
        if N.(dist < !best) then best := dist
      done;
      total := N.(register "total" (!total + !best))
    done;
    !total
end

module Ref = Native (Cheffp_adapt.Num.Float_num)

let reference w = Ref.run w

(* Full Lloyd's algorithm, with a pluggable distance so the clustering
   can run against exact arithmetic or against a precision-emulating
   kernel: used to check mixed-precision kernel choices at application
   level (the paper's k-Means row reports the whole-app outcome). *)

type clustering = {
  assignments : int array;
  centroids : float array;  (* nclusters * nfeatures *)
  iterations : int;
  changed_last : int;
}

let default_distance w ~point ~centroid centroids attributes =
  let acc = ref 0. in
  for f = 0 to w.nfeatures - 1 do
    let d =
      attributes.((point * w.nfeatures) + f)
      -. centroids.((centroid * w.nfeatures) + f)
    in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

(* Distance computed with every store rounded to [fmt]: the bit-accurate
   emulation of running the euclid kernel with demoted [clusters] and
   [sum] (attributes are exactly representable by construction). *)
let rounded_distance fmt w ~point ~centroid centroids attributes =
  let round = Cheffp_precision.Fp.round fmt in
  let acc = ref 0. in
  for f = 0 to w.nfeatures - 1 do
    let d =
      attributes.((point * w.nfeatures) + f)
      -. round centroids.((centroid * w.nfeatures) + f)
    in
    acc := round (!acc +. round (d *. d))
  done;
  sqrt !acc

let cluster ?(max_iter = 20) ?distance w =
  let distance =
    match distance with Some d -> d | None -> default_distance w
  in
  let centroids = Array.copy w.clusters in
  let assignments = Array.make w.npoints (-1) in
  let sums = Array.make (w.nclusters * w.nfeatures) 0. in
  let counts = Array.make w.nclusters 0 in
  let changed = ref w.npoints in
  let iter = ref 0 in
  while !iter < max_iter && !changed > 0 do
    changed := 0;
    for p = 0 to w.npoints - 1 do
      let best = ref 0 and bestd = ref infinity in
      for c = 0 to w.nclusters - 1 do
        let d = distance ~point:p ~centroid:c centroids w.attributes in
        if d < !bestd then begin
          bestd := d;
          best := c
        end
      done;
      if assignments.(p) <> !best then incr changed;
      assignments.(p) <- !best
    done;
    Array.fill sums 0 (Array.length sums) 0.;
    Array.fill counts 0 w.nclusters 0;
    for p = 0 to w.npoints - 1 do
      let c = assignments.(p) in
      counts.(c) <- counts.(c) + 1;
      for f = 0 to w.nfeatures - 1 do
        sums.((c * w.nfeatures) + f) <-
          sums.((c * w.nfeatures) + f) +. w.attributes.((p * w.nfeatures) + f)
      done
    done;
    for c = 0 to w.nclusters - 1 do
      if counts.(c) > 0 then
        for f = 0 to w.nfeatures - 1 do
          centroids.((c * w.nfeatures) + f) <-
            sums.((c * w.nfeatures) + f) /. float_of_int counts.(c)
        done
    done;
    incr iter
  done;
  { assignments; centroids; iterations = !iter; changed_last = !changed }
