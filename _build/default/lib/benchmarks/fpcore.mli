(** FPBench-style kernel suite.

    Classic kernels from the floating-point-analysis literature (the
    FPBench suite used by FPTaylor, Herbie, and the paper's related-work
    tools: Doppler, Jet Engine, Turbine, Predator-Prey, Verhulst, Carbon
    Gas, Rigid Body, ...), expressed in MiniFP with representative input
    boxes. They broaden the evaluation beyond the paper's five HPC codes
    and feed the [suite] benchmark (estimate-vs-actual across kernels)
    and the corresponding regression tests. *)

open Cheffp_ir

type kernel = {
  name : string;
  func_name : string;
  source : string;
  args : Interp.arg list;  (** a representative point inside the input box *)
  description : string;
}

val kernels : kernel list

val program : kernel -> Ast.program
(** Parsed and type-checked. *)

val find : string -> kernel option
