open Cheffp_ir
module Csr = Cheffp_sparse.Csr

type workload = {
  matrix : Csr.t;
  b : float array;
  x0 : float array;
  xexact : float array;
  max_iter : int;
}

let generate ~nx ~ny ~nz ?(max_iter = 150) () =
  let matrix, b, xexact = Csr.stencil27 ~nx ~ny ~nz in
  { matrix; b; x0 = Array.make matrix.Csr.n 0.; xexact; max_iter }

let source =
  {|
// HPCCG main loop: CG on a CSR matrix, fixed iteration count.
// Returns the norm of the computed solution, sqrt(x.x).
func hpccg(vals: f64[], cols: int[], row_ptr: int[], b: f64[], x: f64[],
           nrow: int, maxiter: int): f64 {
  var r: f64[nrow];
  var p: f64[nrow];
  var ap: f64[nrow];
  var rtrans: f64 = 0.0;
  var oldrtrans: f64;
  var alpha: f64;
  var beta: f64;
  var normr: f64 = 0.0;
  var sum: f64;
  for i in 0 .. nrow {
    p[i] = x[i];
  }
  for i in 0 .. nrow {
    sum = 0.0;
    for k in row_ptr[i] .. row_ptr[i + 1] {
      sum = sum + vals[k] * p[cols[k]];
    }
    ap[i] = sum;
  }
  for i in 0 .. nrow {
    r[i] = b[i] - ap[i];
  }
  rtrans = 0.0;
  for i in 0 .. nrow {
    rtrans = rtrans + r[i] * r[i];
  }
  normr = sqrt(rtrans);
  for iter in 1 .. maxiter + 1 {
    if (iter == 1) {
      for i in 0 .. nrow {
        p[i] = r[i];
      }
    } else {
      oldrtrans = rtrans;
      rtrans = 0.0;
      for i in 0 .. nrow {
        rtrans = rtrans + r[i] * r[i];
      }
      beta = rtrans / oldrtrans;
      for i in 0 .. nrow {
        p[i] = r[i] + beta * p[i];
      }
    }
    normr = sqrt(rtrans);
    for i in 0 .. nrow {
      sum = 0.0;
      for k in row_ptr[i] .. row_ptr[i + 1] {
        sum = sum + vals[k] * p[cols[k]];
      }
      ap[i] = sum;
    }
    alpha = 0.0;
    for i in 0 .. nrow {
      alpha = alpha + p[i] * ap[i];
    }
    alpha = rtrans / alpha;
    for i in 0 .. nrow {
      x[i] = x[i] + alpha * p[i];
    }
    for i in 0 .. nrow {
      r[i] = r[i] - alpha * ap[i];
    }
  }
  var xnorm: f64 = 0.0;
  for i in 0 .. nrow {
    xnorm = xnorm + x[i] * x[i];
  }
  return sqrt(xnorm);
}
|}

let program = Parser.parse_program source
let func_name = "hpccg"
let () = Typecheck.check_program program

(* The split-loop mixed-precision rewrite Fig. 9 motivates: the first
   [cutoff] CG iterations run in binary64, the remainder in binary32
   (second-phase state lives in explicitly f32-typed variables, so the
   interpreter/compiler round every store bit-accurately and the cost
   model charges narrow operations). *)
let source_split =
  {|
func hpccg_split(vals: f64[], cols: int[], row_ptr: int[], b: f64[],
                 x: f64[], nrow: int, maxiter: int, cutoff: int): f64 {
  var r: f64[nrow];
  var p: f64[nrow];
  var ap: f64[nrow];
  var rtrans: f64 = 0.0;
  var oldrtrans: f64;
  var alpha: f64;
  var beta: f64;
  var sum: f64;
  for i in 0 .. nrow {
    p[i] = x[i];
  }
  for i in 0 .. nrow {
    sum = 0.0;
    for k in row_ptr[i] .. row_ptr[i + 1] {
      sum = sum + vals[k] * p[cols[k]];
    }
    ap[i] = sum;
  }
  for i in 0 .. nrow {
    r[i] = b[i] - ap[i];
  }
  rtrans = 0.0;
  for i in 0 .. nrow {
    rtrans = rtrans + r[i] * r[i];
  }
  // Phase 1: high precision.
  for iter in 1 .. cutoff + 1 {
    if (iter == 1) {
      for i in 0 .. nrow {
        p[i] = r[i];
      }
    } else {
      oldrtrans = rtrans;
      rtrans = 0.0;
      for i in 0 .. nrow {
        rtrans = rtrans + r[i] * r[i];
      }
      beta = rtrans / oldrtrans;
      for i in 0 .. nrow {
        p[i] = r[i] + beta * p[i];
      }
    }
    for i in 0 .. nrow {
      sum = 0.0;
      for k in row_ptr[i] .. row_ptr[i + 1] {
        sum = sum + vals[k] * p[cols[k]];
      }
      ap[i] = sum;
    }
    alpha = 0.0;
    for i in 0 .. nrow {
      alpha = alpha + p[i] * ap[i];
    }
    alpha = rtrans / alpha;
    for i in 0 .. nrow {
      x[i] = x[i] + alpha * p[i];
    }
    for i in 0 .. nrow {
      r[i] = r[i] - alpha * ap[i];
    }
  }
  // Phase 2: the remaining iterations with binary32 work vectors.
  // The accumulated solution x stays in binary64 (its updates are tiny
  // once CG has converged, so narrow arithmetic in the work vectors
  // barely perturbs it -- the configuration Fig. 9 motivates).
  var r2: f32[nrow];
  var p2: f32[nrow];
  var ap2: f32[nrow];
  var vals2: f32[row_ptr[nrow]];
  var rtrans2: f32;
  var oldrtrans2: f32;
  var alpha2: f32;
  var beta2: f32;
  var sum2: f32;
  for i in 0 .. nrow {
    r2[i] = r[i];
    p2[i] = p[i];
  }
  for j in 0 .. row_ptr[nrow] {
    vals2[j] = vals[j];
  }
  rtrans2 = rtrans;
  for iter2 in cutoff + 1 .. maxiter + 1 {
    // Guard against f32 underflow after convergence (the HPCCG loop
    // condition normr > tolerance plays this role in the original).
    if (rtrans2 > 0.0) {
    if (iter2 == 1) {
      for i in 0 .. nrow {
        p2[i] = r2[i];
      }
    } else {
      oldrtrans2 = rtrans2;
      rtrans2 = 0.0;
      for i in 0 .. nrow {
        rtrans2 = rtrans2 + r2[i] * r2[i];
      }
      beta2 = rtrans2 / oldrtrans2;
      for i in 0 .. nrow {
        p2[i] = r2[i] + beta2 * p2[i];
      }
    }
    for i in 0 .. nrow {
      sum2 = 0.0;
      for k in row_ptr[i] .. row_ptr[i + 1] {
        sum2 = sum2 + vals2[k] * p2[cols[k]];
      }
      ap2[i] = sum2;
    }
    alpha2 = 0.0;
    for i in 0 .. nrow {
      alpha2 = alpha2 + p2[i] * ap2[i];
    }
    alpha2 = rtrans2 / alpha2;
    for i in 0 .. nrow {
      x[i] = x[i] + alpha2 * p2[i];
    }
    for i in 0 .. nrow {
      r2[i] = r2[i] - alpha2 * ap2[i];
    }
    }
  }
  var xnorm: f64 = 0.0;
  for i in 0 .. nrow {
    xnorm = xnorm + x[i] * x[i];
  }
  return sqrt(xnorm);
}
|}

let program_split = Parser.parse_program source_split
let split_func_name = "hpccg_split"
let () = Typecheck.check_program program_split

let args w =
  [
    Interp.Afarr (Array.copy w.matrix.Csr.vals);
    Interp.Aiarr (Array.copy w.matrix.Csr.cols);
    Interp.Aiarr (Array.copy w.matrix.Csr.row_ptr);
    Interp.Afarr (Array.copy w.b);
    Interp.Afarr (Array.copy w.x0);
    Interp.Aint w.matrix.Csr.n;
    Interp.Aint w.max_iter;
  ]

module Native (N : Cheffp_adapt.Num.NUM) = struct
  let run w =
    let a = w.matrix in
    let nrow = a.Csr.n in
    let vals = Array.map (fun v -> N.input "vals" v) a.Csr.vals in
    let b = Array.map (fun v -> N.input "b" v) w.b in
    let x = Array.map (fun v -> N.input "x" v) w.x0 in
    let r = Array.make nrow (N.of_float 0.) in
    let p = Array.make nrow (N.of_float 0.) in
    let ap = Array.make nrow (N.of_float 0.) in
    let spmv () =
      for i = 0 to nrow - 1 do
        let sum = ref (N.of_float 0.) in
        for k = a.Csr.row_ptr.(i) to a.Csr.row_ptr.(i + 1) - 1 do
          let col = a.Csr.cols.(k) in
          sum := N.(register "sum" (!sum + (vals.(k) * p.(col))))
        done;
        ap.(i) <- N.register "Ap" !sum
      done
    in
    for i = 0 to nrow - 1 do
      p.(i) <- x.(i)
    done;
    spmv ();
    for i = 0 to nrow - 1 do
      r.(i) <- N.(register "r" (b.(i) - ap.(i)))
    done;
    let rtrans = ref (N.of_float 0.) in
    for i = 0 to nrow - 1 do
      rtrans := N.(register "rtrans" (!rtrans + (r.(i) * r.(i))))
    done;
    for iter = 1 to w.max_iter do
      if iter = 1 then
        for i = 0 to nrow - 1 do
          p.(i) <- N.register "p" r.(i)
        done
      else begin
        let oldrtrans = !rtrans in
        rtrans := N.of_float 0.;
        for i = 0 to nrow - 1 do
          rtrans := N.(register "rtrans" (!rtrans + (r.(i) * r.(i))))
        done;
        let beta = N.(register "beta" (!rtrans / oldrtrans)) in
        for i = 0 to nrow - 1 do
          p.(i) <- N.(register "p" (r.(i) + (beta * p.(i))))
        done
      end;
      spmv ();
      let alpha = ref (N.of_float 0.) in
      for i = 0 to nrow - 1 do
        alpha := N.(register "alpha" (!alpha + (p.(i) * ap.(i))))
      done;
      let alpha = N.(register "alpha" (!rtrans / !alpha)) in
      for i = 0 to nrow - 1 do
        x.(i) <- N.(register "x" (x.(i) + (alpha * p.(i))))
      done;
      for i = 0 to nrow - 1 do
        r.(i) <- N.(register "r" (r.(i) - (alpha * ap.(i))))
      done
    done;
    let final = ref (N.of_float 0.) in
    for i = 0 to nrow - 1 do
      final := N.(register "xnorm" (!final + (x.(i) * x.(i))))
    done;
    N.sqrt !final
end

module Ref = Native (Cheffp_adapt.Num.Float_num)

let reference w = Ref.run w

let split_args w ~cutoff = args w @ [ Interp.Aint cutoff ]
