(* Shared plumbing for the benchmark harness: one CHEF-FP runner, one
   ADAPT runner, and formatting for the per-figure sweep tables. *)

module E = Cheffp_core.Estimate
module Model = Cheffp_core.Model
module Adapt = Cheffp_adapt.Adapt
module Meter = Cheffp_util.Meter
module Table = Cheffp_util.Table

(* The emulated memory budget for the ADAPT baseline: the paper's
   machines had 128-188 GB and ADAPT exhausted them at the largest
   workloads; we emulate a 1 GiB machine so the same out-of-memory
   crossover appears at laptop-scale sweep points (see EXPERIMENTS.md). *)
let adapt_budget = 1 lsl 30

type point = {
  size : int;
  original_s : float;
  chef_s : float;
  chef_bytes : int;
  adapt_s : float option;  (** None = out of memory *)
  adapt_bytes : int;  (** bytes at completion or at failure *)
}

type sweep = { label : string; points : point list }

let chef_figures_options = { E.default_options with E.per_variable = false }

(* One figure point: time the plain program, the CHEF-FP analysis
   (generation+compilation excluded, like the paper's compile step), and
   the ADAPT analysis under the memory budget. *)
let measure_point ~size ~original ~prog ~func ~args ~adapt_run ?(model = Model.adapt ())
    () =
  (* Return the heap to a clean state before each timed region so one
     tool's garbage does not tax the next one's run. *)
  Gc.compact ();
  let _, original_s = Meter.time original in
  let est = E.estimate_error ~model ~options:chef_figures_options ~prog ~func () in
  Gc.compact ();
  let report, chef_s = Meter.time (fun () -> E.run est args) in
  Gc.compact ();
  let adapt_result, adapt_raw_s =
    Meter.time (fun () -> Adapt.analyze ~memory_budget:adapt_budget adapt_run)
  in
  let adapt_s, adapt_bytes =
    match adapt_result with
    | Ok r -> (Some adapt_raw_s, r.Adapt.tape_bytes)
    | Error oom ->
        (None, oom.Adapt.nodes_at_failure * Cheffp_adapt.Tape.bytes_per_node)
  in
  {
    size;
    original_s;
    chef_s;
    chef_bytes = report.E.analysis_bytes;
    adapt_s;
    adapt_bytes;
  }

let seconds s = Printf.sprintf "%.3f s" s

let print_sweep ~title ~size_label sweep =
  Printf.printf "\n== %s ==\n" title;
  Table.print
    ~header:
      [
        size_label;
        "original time";
        "CHEF-FP time";
        "CHEF-FP mem";
        "ADAPT time";
        "ADAPT mem";
      ]
    (List.map
       (fun p ->
         [
           string_of_int p.size;
           seconds p.original_s;
           seconds p.chef_s;
           Meter.bytes_pp p.chef_bytes;
           (match p.adapt_s with Some s -> seconds s | None -> "OOM");
           Meter.bytes_pp p.adapt_bytes
           ^ (match p.adapt_s with Some _ -> "" | None -> " (at failure)");
         ])
       sweep.points)

(* Average improvement factors over the points where ADAPT completed
   (the paper's Table II aggregates the same way). *)
let improvements sweep =
  let completed =
    List.filter_map
      (fun p ->
        match p.adapt_s with
        | Some s -> Some (s /. p.chef_s, float_of_int p.adapt_bytes /. float_of_int p.chef_bytes)
        | None -> None)
      sweep.points
  in
  match completed with
  | [] -> None
  | l ->
      let n = float_of_int (List.length l) in
      let ts = List.fold_left (fun acc (t, _) -> acc +. t) 0. l in
      let ms = List.fold_left (fun acc (_, m) -> acc +. m) 0. l in
      Some (ts /. n, ms /. n)

let fe = Table.fe
let ff = Table.ff
