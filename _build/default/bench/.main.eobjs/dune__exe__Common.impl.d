bench/common.ml: Cheffp_adapt Cheffp_core Cheffp_util Gc List Printf
