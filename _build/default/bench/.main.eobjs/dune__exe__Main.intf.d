bench/main.mli:
