bench/figures.ml: Array Cheffp_adapt Cheffp_benchmarks Cheffp_core Cheffp_ir Common Float List Printf String
