bench/tables.ml: Array Cheffp_ad Cheffp_benchmarks Cheffp_core Cheffp_fastapprox Cheffp_ir Cheffp_precision Cheffp_util Common Figures Float List Printf String
