bench/bech.ml: Analyze Bechamel Benchmark Cheffp_ad Cheffp_benchmarks Cheffp_core Cheffp_fastapprox Cheffp_ir Cheffp_util Float Hashtbl Instance Lazy List Measure Printf Staged Test Time Toolkit
