bench/ablations.ml: Cheffp_benchmarks Cheffp_core Cheffp_precision Cheffp_util Float Gc List Printf
