bench/main.ml: Ablations Array Bech Figures Printf Sys Tables
