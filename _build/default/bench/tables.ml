(* Tables I-IV of the paper. *)

open Common
module B = Cheffp_benchmarks
module Tuner = Cheffp_core.Tuner
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config
module Cost = Cheffp_precision.Cost
module Compile = Cheffp_ir.Compile
module Builtins = Cheffp_ir.Builtins
module Interp = Cheffp_ir.Interp

(* ------------------------------------------------------------------ *)
(* Table I: mixed-precision tuning summary                             *)

type t1_row = {
  name : string;
  threshold : float;
  actual : float;
  estimated : float;
  speedup : float option;
}

let t1_simple name ~prog ~func ~args ~threshold =
  let o = Tuner.tune ~prog ~func ~args ~threshold () in
  let ev = o.Tuner.evaluation in
  {
    name;
    threshold;
    actual = ev.Tuner.actual_error;
    estimated = o.Tuner.estimated_error;
    speedup =
      (if ev.Tuner.modelled_speedup > 1.005 then Some ev.Tuner.modelled_speedup
       else None);
  }

(* HPCCG: the split-loop configuration driven by the Fig. 9 profile. *)
let t1_hpccg ~threshold =
  let max_iter = 60 in
  let w = B.Hpccg.generate ~nx:20 ~ny:30 ~nz:10 ~max_iter () in
  let est =
    Cheffp_core.Estimate.estimate_error
      ~model:(Cheffp_core.Model.adapt ())
      ~options:
        {
          Cheffp_core.Estimate.default_options with
          track_iterations = `Loop "iter";
        }
      ~prog:B.Hpccg.program ~func:B.Hpccg.func_name ()
  in
  let report = Cheffp_core.Estimate.run est (B.Hpccg.args w) in
  (* Estimated error of running iterations >= c with binary32 work
     vectors: the per-iteration sensitivities |v * adj| of the demoted
     variables scaled by the binary32 unit roundoff (first-order model).
     The cutoff is the earliest iteration whose estimated tail fits the
     threshold. *)
  let demoted = [ "r"; "p"; "ap"; "sum"; "alpha"; "beta"; "rtrans"; "oldrtrans" ] in
  let eps = Fp.unit_roundoff Fp.F32 in
  let cutoff =
    Cheffp_core.Sensitivity.split_cutoff
      ~records:report.Cheffp_core.Estimate.per_iteration ~vars:demoted ~eps
      ~budget:threshold ~max_iter
  in
  let estimated =
    let tracked =
      List.filter
        (fun (v, _) -> List.mem (String.lowercase_ascii v) demoted)
        report.Cheffp_core.Estimate.per_iteration
    in
    eps
    *. List.fold_left
         (fun acc (_, l) ->
           List.fold_left
             (fun acc (i, s) -> if i >= cutoff then acc +. s else acc)
             acc l)
         0. tracked
  in
  (* Validate the split rewrite: bit-accurate result and modelled cost. *)
  let run_cfg prog func args =
    let counter = Cost.Counter.create Cost.default in
    let compiled = Compile.compile ~counter ~prog ~func () in
    let v = Compile.run_float compiled args in
    (v, Cost.Counter.total counter)
  in
  let reference, cost_double =
    run_cfg B.Hpccg.program B.Hpccg.func_name (B.Hpccg.args w)
  in
  let split_value, cost_split =
    run_cfg B.Hpccg.program_split B.Hpccg.split_func_name
      (B.Hpccg.split_args w ~cutoff)
  in
  ( {
      name = "HPCCG";
      threshold;
      actual = Float.abs (split_value -. reference);
      estimated;
      speedup = Some (cost_double /. cost_split);
    },
    cutoff )

let table1 () =
  let rows =
    [
      t1_simple "Arc Length" ~prog:B.Arclength.program
        ~func:B.Arclength.func_name
        ~args:(B.Arclength.args ~n:100_000)
        ~threshold:1e-5;
      t1_simple "Simpsons" ~prog:B.Simpsons.program ~func:B.Simpsons.func_name
        ~args:(B.Simpsons.args ~a:0. ~b:Float.pi ~n:100_000)
        ~threshold:1e-6;
      (let w = B.Kmeans.generate ~npoints:10_000 () in
       t1_simple "k-Means" ~prog:B.Kmeans.program ~func:B.Kmeans.func_name
         ~args:(B.Kmeans.args w) ~threshold:1e-6);
      (let row, cutoff = t1_hpccg ~threshold:1e-10 in
       Printf.printf
         "(HPCCG split-loop cutoff from the sensitivity profile: iteration %d)\n"
         cutoff;
       row);
    ]
  in
  print_endline
    "\n== Table I: error and performance of the mixed-precision versions ==";
  Cheffp_util.Table.print
    ~header:[ "Benchmark"; "Threshold"; "Actual Error"; "Estimated Error"; "Speedup" ]
    (List.map
       (fun r ->
         [
           r.name;
           fe r.threshold;
           fe r.actual;
           fe r.estimated;
           (match r.speedup with Some s -> ff s | None -> "-");
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Table II: average improvement of CHEF-FP over ADAPT                 *)

let table2 ?sweeps () =
  let sweeps = match sweeps with Some s -> s | None -> Figures.run_all () in
  print_endline "\n== Table II: performance improvements over ADAPT ==";
  Cheffp_util.Table.print
    ~header:[ "Benchmark"; "Time"; "Memory" ]
    (List.map
       (fun sweep ->
         match improvements sweep with
         | Some (t, m) -> [ sweep.label; ff t ^ "x"; ff m ^ "x" ]
         | None -> [ sweep.label; "n/a"; "n/a" ])
       sweeps)

(* ------------------------------------------------------------------ *)
(* Table III: k-Means per-variable demotion                            *)

let table3 ?(npoints = 100_000) () =
  let w = B.Kmeans.generate ~npoints () in
  let est =
    Cheffp_core.Estimate.estimate_error
      ~model:(Cheffp_core.Model.adapt ())
      ~prog:B.Kmeans.program ~func:B.Kmeans.func_name ()
  in
  let report = Cheffp_core.Estimate.run est (B.Kmeans.args w) in
  let estimated_for vars =
    List.fold_left
      (fun acc v ->
        acc
        +.
        match List.assoc_opt v report.Cheffp_core.Estimate.per_variable with
        | Some e -> e
        | None -> 0.)
      0. vars
  in
  let actual_for vars =
    let config = Config.demote_all Config.double vars Fp.F32 in
    let ev =
      Tuner.evaluate ~prog:B.Kmeans.program ~func:B.Kmeans.func_name
        ~args:(B.Kmeans.args w) config
    in
    ev.Tuner.actual_error
  in
  let configs =
    [
      ("attributes", [ "attributes" ]);
      ("clusters", [ "clusters" ]);
      ("sum", [ "sum" ]);
      ("all 3", [ "attributes"; "clusters"; "sum" ]);
    ]
  in
  Printf.printf
    "\n== Table III: k-Means mixed-precision configurations (%d datapoints) ==\n"
    npoints;
  Cheffp_util.Table.print
    ~header:[ "Variable(s) in Lower Precision"; "Actual Error"; "Estimated Error" ]
    (List.map
       (fun (label, vars) ->
         [ label; fe (actual_for vars); fe (estimated_for vars) ])
       configs)

(* ------------------------------------------------------------------ *)
(* Table IV: Black-Scholes FastApprox configurations                   *)

let table4 ?(n = 1000) () =
  let w = B.Blackscholes.generate ~n () in
  let exact_prog = B.Blackscholes.program B.Blackscholes.Exact in
  let m_exact = B.Blackscholes.mathset_of B.Blackscholes.Exact in
  let price_i m i =
    B.Blackscholes.price_native m ~s:w.B.Blackscholes.sptprice.(i)
      ~k:w.B.Blackscholes.strike.(i) ~r:w.B.Blackscholes.rate.(i)
      ~v:w.B.Blackscholes.volatility.(i) ~t:w.B.Blackscholes.otime.(i)
      ~otype:w.B.Blackscholes.otype.(i)
  in
  let cost_of config =
    let counter = Cost.Counter.create Cost.default in
    let builtins = Builtins.create () in
    Cheffp_fastapprox.Fastapprox.register_builtins builtins;
    let compiled =
      Compile.compile ~builtins ~counter
        ~prog:(B.Blackscholes.program config)
        ~func:B.Blackscholes.func_name ()
    in
    ignore (Compile.run_float compiled (B.Blackscholes.args w));
    Cost.Counter.total counter
  in
  let cost_exact = cost_of B.Blackscholes.Exact in
  let row config =
    let pairs = B.Blackscholes.approx_pairs config in
    let builtins = Builtins.create () in
    Cheffp_fastapprox.Fastapprox.register_builtins builtins;
    let deriv = Cheffp_ad.Deriv.default () in
    Cheffp_fastapprox.Fastapprox.register_derivatives deriv;
    let model =
      Cheffp_core.Model.approx_functions ~pairs ~eval:B.Blackscholes.eval_exact
        ~eval_approx:B.Blackscholes.eval_approx
    in
    let est =
      Cheffp_core.Estimate.estimate_error ~model ~deriv ~builtins
        ~prog:exact_prog ~func:B.Blackscholes.price_func ()
    in
    let m_fast = B.Blackscholes.mathset_of config in
    let actual = Array.make n 0. and estimated = Array.make n 0. in
    for i = 0 to n - 1 do
      actual.(i) <- Float.abs (price_i m_fast i -. price_i m_exact i);
      let r = Cheffp_core.Estimate.run est (B.Blackscholes.price_args w i) in
      estimated.(i) <- r.Cheffp_core.Estimate.total_error
    done;
    let speedup = cost_exact /. cost_of config in
    let stats a =
      Cheffp_util.Stats.(mean a, max a, sum a)
    in
    let a_avg, a_max, a_acc = stats actual in
    let e_avg, e_max, e_acc = stats estimated in
    [
      B.Blackscholes.config_name config;
      fe a_avg; fe a_max; fe a_acc;
      fe e_avg; fe e_max; fe e_acc;
      ff speedup;
    ]
  in
  Printf.printf
    "\n== Table IV: Black-Scholes FastApprox configurations (%d options) ==\n" n;
  Cheffp_util.Table.print
    ~header:
      [
        "App Configuration";
        "act avg"; "act max"; "act acc";
        "est avg"; "est max"; "est acc";
        "Speedup";
      ]
    [
      row B.Blackscholes.Fast_log_sqrt;
      row B.Blackscholes.Fast_log_sqrt_exp;
    ]

(* ------------------------------------------------------------------ *)
(* Beyond the paper: FPBench-style kernel suite                        *)

let suite () =
  print_endline
    "\n== FPBench-style kernel suite: estimate vs measured f32-demotion error ==";
  Cheffp_util.Table.print
    ~header:
      [ "kernel"; "reference value"; "actual error"; "estimated error";
        "est/act"; "description" ]
    (List.map
       (fun kern ->
         let prog = B.Fpcore.program kern in
         let func = kern.B.Fpcore.func_name in
         let args = kern.B.Fpcore.args in
         let est =
           Cheffp_core.Estimate.estimate_error
             ~model:(Cheffp_core.Model.adapt ())
             ~prog ~func ()
         in
         let report = Cheffp_core.Estimate.run est args in
         let reference = Interp.run_float ~prog ~func args in
         let mixed =
           Interp.run_float
             ~config:(Config.uniform Fp.F32)
             ~mode:Config.Extended ~prog ~func args
         in
         let actual = Float.abs (mixed -. reference) in
         let estd = report.Cheffp_core.Estimate.total_error in
         [
           kern.B.Fpcore.name;
           Printf.sprintf "%.6g" reference;
           fe actual;
           fe estd;
           (if actual > 0. then Printf.sprintf "%.1f" (estd /. actual) else "inf");
           kern.B.Fpcore.description;
         ])
       B.Fpcore.kernels)
