(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation, plus the ablations DESIGN.md calls out and a
   Bechamel micro-benchmark suite (one Test.make per table).

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- table1  # one experiment
     ids: table1 table2 table3 table4 fig4 fig5 fig6 fig7 fig8 fig9
          ablation-inline ablation-opt ablation-precision ablation-activity
          bechamel all *)

let usage () =
  print_endline
    "usage: main.exe [table1|table2|table3|table4|fig4|fig5|fig6|fig7|fig8|fig9|\n\
    \                 ablation-inline|ablation-opt|ablation-precision|\n\
    \                 ablation-activity|ablation-search|bechamel|all]";
  exit 1

let all () =
  Tables.table1 ();
  Tables.table3 ();
  Tables.table4 ();
  Tables.suite ();
  let sweeps = Figures.run_all () in
  Tables.table2 ~sweeps ();
  Ablations.run_all ();
  Bech.run ()

let () =
  Printf.printf "CHEF-FP reproduction benchmark harness\n";
  Printf.printf "(paper: Fast And Automatic Floating Point Error Analysis \
                 With CHEF-FP, IPPS 2023)\n";
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "all" -> all ()
  | "table1" -> Tables.table1 ()
  | "table2" -> Tables.table2 ()
  | "table3" -> Tables.table3 ()
  | "table4" -> Tables.table4 ()
  | "fig4" -> ignore (Figures.fig4 ())
  | "fig5" -> ignore (Figures.fig5 ())
  | "fig6" -> ignore (Figures.fig6 ())
  | "fig7" -> ignore (Figures.fig7 ())
  | "fig8" -> ignore (Figures.fig8 ())
  | "fig9" -> ignore (Figures.fig9 ())
  | "ablation-inline" -> Ablations.inline ()
  | "ablation-opt" -> Ablations.opt ()
  | "ablation-precision" -> Ablations.precision ()
  | "ablation-activity" -> Ablations.activity ()
  | "ablation-search" -> Ablations.search ()
  | "suite" -> Tables.suite ()
  | "bechamel" -> Bech.run ()
  | _ -> usage ()
