open Cheffp_sparse

let check_float = Alcotest.(check (float 1e-12))

(* ------------------------------------------------------------------ *)
(* Vec                                                                *)

let test_vec_dot () =
  check_float "dot" 32. (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |]);
  check_float "empty" 0. (Vec.dot [||] [||]);
  Alcotest.check_raises "mismatch" (Invalid_argument "Vec.dot: length mismatch")
    (fun () -> ignore (Vec.dot [| 1. |] [||]))

let test_vec_norm2 () = check_float "norm" 5. (Vec.norm2 [| 3.; 4. |])

let test_vec_axpy () =
  let y = [| 1.; 1. |] in
  Vec.axpy 2. [| 10.; 20. |] y;
  Alcotest.(check bool) "axpy" true (y = [| 21.; 41. |])

let test_vec_waxpby () =
  let w = [| 0.; 0. |] in
  Vec.waxpby 2. [| 1.; 2. |] 3. [| 10.; 20. |] w;
  Alcotest.(check bool) "waxpby" true (w = [| 32.; 64. |]);
  (* aliasing w == y is allowed (HPCCG does p = r + beta*p) *)
  let p = [| 1.; 2. |] in
  Vec.waxpby 1. [| 10.; 10. |] 2. p p;
  Alcotest.(check bool) "aliased" true (p = [| 12.; 14. |])

let test_vec_helpers () =
  let a = [| 1.; 5. |] in
  let b = Vec.copy a in
  Vec.fill b 0.;
  Alcotest.(check bool) "copy is fresh" true (a = [| 1.; 5. |] && b = [| 0.; 0. |]);
  check_float "max_abs_diff" 5. (Vec.max_abs_diff a b)

(* ------------------------------------------------------------------ *)
(* CSR / stencil generator                                            *)

let test_stencil_dimensions () =
  let a, b, xexact = Csr.stencil27 ~nx:3 ~ny:4 ~nz:5 in
  Alcotest.(check int) "n" 60 a.Csr.n;
  Alcotest.(check int) "b length" 60 (Array.length b);
  Alcotest.(check int) "xexact length" 60 (Array.length xexact);
  Alcotest.(check int) "row_ptr length" 61 (Array.length a.Csr.row_ptr)

let test_stencil_entry_counts () =
  let a, _, _ = Csr.stencil27 ~nx:3 ~ny:3 ~nz:3 in
  (* corner rows touch 8 grid points, the centre row touches 27 *)
  let row_len i = a.Csr.row_ptr.(i + 1) - a.Csr.row_ptr.(i) in
  Alcotest.(check int) "corner row" 8 (row_len 0);
  Alcotest.(check int) "centre row" 27 (row_len 13);
  Alcotest.(check int) "nnz consistent" (Csr.nnz a)
    (Array.fold_left ( + ) 0 (Array.init 27 row_len))

let test_stencil_values () =
  let a, _, _ = Csr.stencil27 ~nx:3 ~ny:3 ~nz:3 in
  let d = Csr.dense_of a in
  Alcotest.(check (float 0.)) "diagonal" 27. d.(13).(13);
  Alcotest.(check (float 0.)) "neighbour" (-1.) d.(13).(12);
  Alcotest.(check (float 0.)) "non-neighbour" 0. d.(0).(26);
  (* symmetry *)
  let sym = ref true in
  for i = 0 to 26 do
    for j = 0 to 26 do
      if d.(i).(j) <> d.(j).(i) then sym := false
    done
  done;
  Alcotest.(check bool) "symmetric" true !sym

let test_stencil_rhs () =
  (* b = A * ones, so each b_i is its row sum: 27 - (#neighbours - 1). *)
  let a, b, _ = Csr.stencil27 ~nx:3 ~ny:3 ~nz:3 in
  let row_len i = a.Csr.row_ptr.(i + 1) - a.Csr.row_ptr.(i) in
  Array.iteri
    (fun i bi ->
      check_float (Printf.sprintf "b[%d]" i)
        (27. -. float_of_int (row_len i - 1))
        bi)
    b

let test_spmv_vs_dense () =
  let a, _, _ = Csr.stencil27 ~nx:2 ~ny:3 ~nz:2 in
  let d = Csr.dense_of a in
  let rng = Cheffp_util.Rng.create 5L in
  let x = Array.init a.Csr.n (fun _ -> Cheffp_util.Rng.uniform rng ~lo:(-1.) ~hi:1.) in
  let y = Array.make a.Csr.n 0. in
  Csr.spmv a x y;
  Array.iteri
    (fun i yi ->
      let expect = Array.fold_left ( +. ) 0. (Array.mapi (fun j dij -> dij *. x.(j)) d.(i)) in
      Alcotest.(check (float 1e-10)) (Printf.sprintf "row %d" i) expect yi)
    y

let test_spmv_dim_check () =
  let a, _, _ = Csr.stencil27 ~nx:2 ~ny:2 ~nz:2 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Csr.spmv: dimension mismatch")
    (fun () -> Csr.spmv a [| 1. |] (Array.make a.Csr.n 0.))

(* ------------------------------------------------------------------ *)
(* CG                                                                 *)

let test_cg_solves_stencil () =
  let a, b, xexact = Csr.stencil27 ~nx:6 ~ny:6 ~nz:6 in
  let x = Array.make a.Csr.n 0. in
  let st = Cg.solve ~max_iter:100 ~tolerance:1e-13 a ~b ~x in
  Alcotest.(check bool) "converged" true (st.Cg.residual < 1e-10);
  Alcotest.(check bool) "solution accurate" true
    (Vec.max_abs_diff x xexact < 1e-10);
  Alcotest.(check bool) "took some iterations" true (st.Cg.iterations > 2)

let test_cg_exact_after_n_iterations () =
  (* CG converges in at most n steps in exact arithmetic; numerically the
     residual must at least be tiny after n iterations. *)
  let a, b, _ = Csr.stencil27 ~nx:2 ~ny:2 ~nz:2 in
  let x = Array.make a.Csr.n 0. in
  let st = Cg.solve ~max_iter:a.Csr.n ~tolerance:0. a ~b ~x in
  Alcotest.(check bool) "small residual" true (st.Cg.residual < 1e-8)

let test_cg_history_monotone_tail () =
  let a, b, _ = Csr.stencil27 ~nx:5 ~ny:5 ~nz:5 in
  let x = Array.make a.Csr.n 0. in
  let st = Cg.solve ~max_iter:60 ~tolerance:0. a ~b ~x in
  let h = st.Cg.normr_history in
  Alcotest.(check bool) "history recorded" true (Array.length h > 10);
  Alcotest.(check bool) "overall decreasing" true
    (h.(Array.length h - 1) < h.(0) /. 1e6)

let test_cg_respects_initial_guess () =
  let a, b, xexact = Csr.stencil27 ~nx:4 ~ny:4 ~nz:4 in
  let x = Array.copy xexact in
  let st = Cg.solve ~max_iter:5 ~tolerance:1e-14 a ~b ~x in
  Alcotest.(check bool) "starts converged" true (st.Cg.residual < 1e-10);
  Alcotest.(check int) "stops immediately" 0 st.Cg.iterations

let test_cg_dim_check () =
  let a, b, _ = Csr.stencil27 ~nx:2 ~ny:2 ~nz:2 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Cg.solve: dimension mismatch")
    (fun () -> ignore (Cg.solve a ~b ~x:[| 0. |]))

let qcheck_cg_random_rhs =
  QCheck.Test.make ~count:10 ~name:"cg solves random right-hand sides"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let a, _, _ = Csr.stencil27 ~nx:4 ~ny:3 ~nz:3 in
      let rng = Cheffp_util.Rng.create (Int64.of_int seed) in
      let xtrue =
        Array.init a.Csr.n (fun _ -> Cheffp_util.Rng.uniform rng ~lo:(-2.) ~hi:2.)
      in
      let b = Array.make a.Csr.n 0. in
      Csr.spmv a xtrue b;
      let x = Array.make a.Csr.n 0. in
      ignore (Cg.solve ~max_iter:200 ~tolerance:1e-13 a ~b ~x);
      Vec.max_abs_diff x xtrue < 1e-8)

let () =
  Alcotest.run "sparse"
    [
      ( "vec",
        [
          Alcotest.test_case "dot" `Quick test_vec_dot;
          Alcotest.test_case "norm2" `Quick test_vec_norm2;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "waxpby" `Quick test_vec_waxpby;
          Alcotest.test_case "helpers" `Quick test_vec_helpers;
        ] );
      ( "csr",
        [
          Alcotest.test_case "dimensions" `Quick test_stencil_dimensions;
          Alcotest.test_case "entry counts" `Quick test_stencil_entry_counts;
          Alcotest.test_case "values" `Quick test_stencil_values;
          Alcotest.test_case "rhs" `Quick test_stencil_rhs;
          Alcotest.test_case "spmv vs dense" `Quick test_spmv_vs_dense;
          Alcotest.test_case "spmv dims" `Quick test_spmv_dim_check;
        ] );
      ( "cg",
        [
          Alcotest.test_case "solves stencil" `Quick test_cg_solves_stencil;
          Alcotest.test_case "n-step convergence" `Quick
            test_cg_exact_after_n_iterations;
          Alcotest.test_case "history" `Quick test_cg_history_monotone_tail;
          Alcotest.test_case "initial guess" `Quick test_cg_respects_initial_guess;
          Alcotest.test_case "dims" `Quick test_cg_dim_check;
          QCheck_alcotest.to_alcotest qcheck_cg_random_rhs;
        ] );
    ]
