open Cheffp_fastapprox.Fastapprox
open Cheffp_ir

(* Scaled error: relative where the reference is large, absolute where
   it passes through zero (log near 1, etc.). *)
let rel_err exact approx =
  Float.abs (approx -. exact) /. Float.max 1. (Float.abs exact)

let max_rel_err f g lo hi n =
  let worst = ref 0. in
  for i = 0 to n - 1 do
    let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)) in
    worst := Float.max !worst (rel_err (f x) (g x))
  done;
  !worst

(* ------------------------------------------------------------------ *)
(* Accuracy envelopes (from the FastApprox documentation)              *)

let test_fastlog2_accuracy () =
  Alcotest.(check bool) "fastlog2 ~ 1e-3 scaled" true
    (max_rel_err (fun x -> log x /. log 2.) fastlog2 0.01 1000. 2000 < 1e-3)

let test_fastlog_accuracy () =
  Alcotest.(check bool) "fastlog" true
    (max_rel_err log fastlog 0.01 1000. 2000 < 1e-3)

let test_fastexp_accuracy () =
  Alcotest.(check bool) "fastexp" true
    (max_rel_err exp fastexp (-10.) 10. 2000 < 1e-4)

let test_fastpow2_accuracy () =
  Alcotest.(check bool) "fastpow2" true
    (max_rel_err (fun x -> 2. ** x) fastpow2 (-20.) 20. 2000 < 1e-4)

let test_fastpow_accuracy () =
  let worst = ref 0. in
  List.iter
    (fun p ->
      worst :=
        Float.max !worst
          (max_rel_err (fun x -> x ** p) (fun x -> fastpow x p) 0.1 50. 500))
    [ 0.5; 1.5; 2.5; -1.2 ];
  Alcotest.(check bool) "fastpow" true (!worst < 3e-4)

let test_fastsqrt_accuracy () =
  Alcotest.(check bool) "fastsqrt" true
    (max_rel_err sqrt fastsqrt 0.01 10000. 2000 < 2e-4)

let test_fastsin_accuracy () =
  let worst = ref 0. in
  for i = 0 to 999 do
    let x = -3.1 +. (6.2 *. float_of_int i /. 999.) in
    worst := Float.max !worst (Float.abs (fastsin x -. sin x))
  done;
  Alcotest.(check bool) "fastsin abs err < 1e-3" true (!worst < 1e-3)

let test_faster_variants_coarser () =
  Alcotest.(check bool) "fasterexp ~ percents" true
    (max_rel_err exp fasterexp (-5.) 5. 500 < 0.07);
  Alcotest.(check bool) "fasterlog" true
    (max_rel_err log fasterlog 0.1 100. 500 < 0.15);
  Alcotest.(check bool) "fasterpow2" true
    (max_rel_err (fun x -> 2. ** x) fasterpow2 (-5.) 5. 500 < 0.07);
  (* and they really are coarser than the fast versions *)
  Alcotest.(check bool) "faster worse than fast" true
    (max_rel_err exp fasterexp (-5.) 5. 500
    > max_rel_err exp fastexp (-5.) 5. 500)

let test_fastpow2_clipping () =
  Alcotest.(check bool) "deep negative clips to ~0" true
    (fastpow2 (-300.) < 1e-35)

let qcheck_fastexp_positive =
  QCheck.Test.make ~count:500 ~name:"fastexp stays positive"
    QCheck.(float_range (-80.) 80.)
    (fun x -> fastexp x > 0.)

let qcheck_fastlog_monotone =
  QCheck.Test.make ~count:500 ~name:"fastlog monotone"
    QCheck.(pair (float_range 0.01 1e4) (float_range 0.01 1e4))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      lo = hi || fastlog lo <= fastlog hi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* MiniFP integration                                                  *)

let builtins_with_fast () =
  let b = Builtins.create () in
  register_builtins b;
  b

let test_registered_as_intrinsics () =
  let b = builtins_with_fast () in
  List.iter
    (fun name ->
      match Builtins.signature b name with
      | Some sg ->
          Alcotest.(check bool) (name ^ " approx flag") true sg.Builtins.approx
      | None -> Alcotest.failf "%s not registered" name)
    [ "fastlog"; "fastexp"; "fastsqrt"; "fastsin"; "fastpow"; "fasterexp" ]

let test_callable_from_minifp () =
  let builtins = builtins_with_fast () in
  let prog =
    Parser.parse_program "func f(x: f64): f64 { return fastexp(x) + fastlog(x); }"
  in
  Typecheck.check_program ~builtins prog;
  let v = Interp.run_float ~builtins ~prog ~func:"f" [ Interp.Aflt 2.0 ] in
  Alcotest.(check bool) "close to exact" true
    (Float.abs (v -. (exp 2.0 +. log 2.0)) < 1e-3)

let test_approx_costs_discounted () =
  let builtins = builtins_with_fast () in
  let module Cost = Cheffp_precision.Cost in
  let cost_of src =
    let counter = Cost.Counter.create Cost.default in
    let prog = Parser.parse_program src in
    ignore (Interp.run_float ~builtins ~counter ~prog ~func:"f" [ Interp.Aflt 2.0 ]);
    Cost.Counter.total counter
  in
  Alcotest.(check bool) "fastexp cheaper than exp" true
    (cost_of "func f(x: f64): f64 { return fastexp(x); }"
    < cost_of "func f(x: f64): f64 { return exp(x); }")

let test_derivatives_registered () =
  let builtins = builtins_with_fast () in
  let deriv = Cheffp_ad.Deriv.default () in
  register_derivatives deriv;
  let prog =
    Parser.parse_program
      "func f(x: f64): f64 { return fastexp(x) * fastlog(x + 2.0) + fastpow2(x); }"
  in
  Typecheck.check_program ~builtins prog;
  let g = Cheffp_ad.Reverse.differentiate ~deriv prog "f" in
  let prog' = Ast.add_func prog g in
  let run x = Interp.run_float ~builtins ~prog ~func:"f" [ Interp.Aflt x ] in
  let r =
    Interp.run ~builtins ~prog:prog' ~func:g.Ast.fname
      [ Interp.Aflt 1.1; Interp.Aflt 0. ]
  in
  let ad = Builtins.as_float (List.assoc "_d_x" r.Interp.outs) in
  let h = 1e-5 in
  let num = (run (1.1 +. h) -. run (1.1 -. h)) /. (2. *. h) in
  (* smooth-surrogate derivative vs the approximation's own secant: the
     bit-twiddled functions are piecewise linear, so agreement is loose *)
  Alcotest.(check bool) "derivative plausible" true
    (Float.abs (ad -. num) /. Float.max 1. (Float.abs num) < 0.05)

let () =
  Alcotest.run "fastapprox"
    [
      ( "accuracy",
        [
          Alcotest.test_case "fastlog2" `Quick test_fastlog2_accuracy;
          Alcotest.test_case "fastlog" `Quick test_fastlog_accuracy;
          Alcotest.test_case "fastexp" `Quick test_fastexp_accuracy;
          Alcotest.test_case "fastpow2" `Quick test_fastpow2_accuracy;
          Alcotest.test_case "fastpow" `Quick test_fastpow_accuracy;
          Alcotest.test_case "fastsqrt" `Quick test_fastsqrt_accuracy;
          Alcotest.test_case "fastsin" `Quick test_fastsin_accuracy;
          Alcotest.test_case "faster variants" `Quick test_faster_variants_coarser;
          Alcotest.test_case "clipping" `Quick test_fastpow2_clipping;
          QCheck_alcotest.to_alcotest qcheck_fastexp_positive;
          QCheck_alcotest.to_alcotest qcheck_fastlog_monotone;
        ] );
      ( "minifp",
        [
          Alcotest.test_case "registered" `Quick test_registered_as_intrinsics;
          Alcotest.test_case "callable" `Quick test_callable_from_minifp;
          Alcotest.test_case "costs discounted" `Quick test_approx_costs_discounted;
          Alcotest.test_case "derivatives" `Quick test_derivatives_registered;
        ] );
    ]
