module Adapt = Cheffp_adapt.Adapt
module Tape = Cheffp_adapt.Tape
module Num = Cheffp_adapt.Num
module Fp = Cheffp_precision.Fp

let close ?(tol = 1e-9) a b =
  Float.abs (a -. b) /. Float.max 1. (Float.max (Float.abs a) (Float.abs b))
  < tol

(* ------------------------------------------------------------------ *)
(* Tape mechanics                                                     *)

let test_tape_gradient_simple () =
  (* f(x,y) = x*y + sin(x) *)
  let result =
    Adapt.analyze (fun tape ->
        let module N = (val Adapt.num tape) in
        let x = N.input "x" 1.2 and y = N.input "y" 0.7 in
        N.((x * y) + sin x))
  in
  match result with
  | Error _ -> Alcotest.fail "unexpected OOM"
  | Ok r ->
      Alcotest.(check bool) "value" true
        (close r.Adapt.value ((1.2 *. 0.7) +. sin 1.2));
      let dx = List.assoc "x" r.Adapt.gradients in
      let dy = List.assoc "y" r.Adapt.gradients in
      Alcotest.(check bool) "dx" true (close dx (0.7 +. cos 1.2));
      Alcotest.(check bool) "dy" true (close dy 1.2)

let test_tape_ops_vs_fd () =
  let f x =
    exp (log (x *. x)) +. (sqrt x /. cos x) -. ((x ** 3.) *. Float.abs (-.x))
  in
  let result =
    Adapt.analyze (fun tape ->
        let module N = (val Adapt.num tape) in
        let x = N.input "x" 0.8 in
        N.(
          exp (log (x * x))
          + (sqrt x / cos x)
          - (pow x (of_float 3.) * fabs (neg x))))
  in
  match result with
  | Error _ -> Alcotest.fail "unexpected OOM"
  | Ok r ->
      let h = 1e-7 in
      let num = (f (0.8 +. h) -. f (0.8 -. h)) /. (2. *. h) in
      Alcotest.(check bool) "tape gradient vs fd" true
        (close ~tol:1e-5 (List.assoc "x" r.Adapt.gradients) num)

let test_tape_bytes_accounting () =
  let result =
    Adapt.analyze (fun tape ->
        let module N = (val Adapt.num tape) in
        let x = N.input "x" 2.0 in
        let acc = ref x in
        for _ = 1 to 100 do
          acc := N.(!acc + x)
        done;
        !acc)
  in
  match result with
  | Error _ -> Alcotest.fail "unexpected OOM"
  | Ok r ->
      Alcotest.(check int) "nodes = input + 100 adds" 101 r.Adapt.nodes;
      Alcotest.(check int) "bytes = nodes * node size"
        (101 * Tape.bytes_per_node) r.Adapt.tape_bytes

let test_tape_oom () =
  let result =
    Adapt.analyze ~memory_budget:(Tape.bytes_per_node * 10) (fun tape ->
        let module N = (val Adapt.num tape) in
        let x = N.input "x" 1.0 in
        let acc = ref x in
        for _ = 1 to 100 do
          acc := N.(!acc + x)
        done;
        !acc)
  in
  match result with
  | Ok _ -> Alcotest.fail "expected OOM"
  | Error oom ->
      Alcotest.(check int) "budget recorded" (Tape.bytes_per_node * 10)
        oom.Adapt.budget;
      Alcotest.(check bool) "failed near the limit" true
        (oom.Adapt.nodes_at_failure <= 10)

let test_error_model_attribution () =
  (* A registered variable holding a non-representable value under f32
     contributes |adjoint * rep_error|. *)
  let v = 0.1 in
  let result =
    Adapt.analyze (fun tape ->
        let module N = (val Adapt.num tape) in
        let x = N.input "x" v in
        let t = N.register "t" N.(x * of_float 3.) in
        N.(t * of_float 2.))
  in
  match result with
  | Error _ -> Alcotest.fail "unexpected OOM"
  | Ok r ->
      let expected_t =
        Float.abs (2. *. Fp.representation_error Fp.F32 (v *. 3.))
      in
      let expected_x =
        Float.abs (6. *. Fp.representation_error Fp.F32 v)
      in
      Alcotest.(check bool) "t attribution" true
        (close (List.assoc "t" r.Adapt.per_variable) expected_t);
      Alcotest.(check bool) "x attribution" true
        (close (List.assoc "x" r.Adapt.per_variable) expected_x);
      Alcotest.(check bool) "total = sum" true
        (close r.Adapt.total_error (expected_t +. expected_x))

let test_float_num_is_plain () =
  let module N = Num.Float_num in
  Alcotest.(check (float 0.)) "passthrough" 5.
    N.(to_float (register "x" (input "y" 2.0 + of_float 3.0)))

(* ------------------------------------------------------------------ *)
(* Cross-validation against the CHEF-FP source-transformation engine  *)

let test_adapt_vs_chef_gradients () =
  let a = 0.25 and b = 2.8 and n = 64 in
  let chef =
    let prog = Cheffp_benchmarks.Simpsons.program in
    let est =
      Cheffp_core.Estimate.estimate_error
        ~model:(Cheffp_core.Model.adapt ())
        ~prog ~func:"simpsons" ()
    in
    Cheffp_core.Estimate.run est (Cheffp_benchmarks.Simpsons.args ~a ~b ~n)
  in
  let adapt =
    match
      Adapt.analyze (fun tape ->
          let module N = (val Adapt.num tape) in
          let module S = Cheffp_benchmarks.Simpsons.Native (N) in
          S.run ~a ~b ~n)
    with
    | Ok r -> r
    | Error _ -> Alcotest.fail "unexpected OOM"
  in
  let chef_da = List.assoc "a" chef.Cheffp_core.Estimate.gradients in
  let adapt_da = List.assoc "a" adapt.Adapt.gradients in
  Alcotest.(check bool) "gradients agree" true (close ~tol:1e-9 chef_da adapt_da);
  Alcotest.(check bool) "totals same order" true
    (let c = chef.Cheffp_core.Estimate.total_error
     and t = adapt.Adapt.total_error in
     c > 0. && t > 0. && c /. t < 3. && t /. c < 3.)

let test_adapt_vs_chef_arclength_total () =
  let n = 500 in
  let chef =
    let est =
      Cheffp_core.Estimate.estimate_error
        ~model:(Cheffp_core.Model.adapt ())
        ~prog:Cheffp_benchmarks.Arclength.program ~func:"arclength" ()
    in
    Cheffp_core.Estimate.run est (Cheffp_benchmarks.Arclength.args ~n)
  in
  let adapt =
    match
      Adapt.analyze (fun tape ->
          let module N = (val Adapt.num tape) in
          let module A = Cheffp_benchmarks.Arclength.Native (N) in
          A.run ~n)
    with
    | Ok r -> r
    | Error _ -> Alcotest.fail "unexpected OOM"
  in
  let c = chef.Cheffp_core.Estimate.total_error in
  let t = adapt.Adapt.total_error in
  Alcotest.(check bool) "within 10 percent" true
    (Float.abs (c -. t) /. Float.max c t < 0.10)

let () =
  Alcotest.run "adapt"
    [
      ( "tape",
        [
          Alcotest.test_case "gradient simple" `Quick test_tape_gradient_simple;
          Alcotest.test_case "ops vs fd" `Quick test_tape_ops_vs_fd;
          Alcotest.test_case "bytes accounting" `Quick test_tape_bytes_accounting;
          Alcotest.test_case "oom budget" `Quick test_tape_oom;
          Alcotest.test_case "error attribution" `Quick
            test_error_model_attribution;
          Alcotest.test_case "float num" `Quick test_float_num_is_plain;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "gradients CHEF = ADAPT" `Quick
            test_adapt_vs_chef_gradients;
          Alcotest.test_case "totals agree (arclength)" `Quick
            test_adapt_vs_chef_arclength_total;
        ] );
    ]
