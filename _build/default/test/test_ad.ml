open Cheffp_ir
module Reverse = Cheffp_ad.Reverse
module Forward = Cheffp_ad.Forward
module Deriv = Cheffp_ad.Deriv
module Activity = Cheffp_ad.Activity

(* Finite-difference reference. *)
let fd f x =
  let h = 1e-6 *. Float.max 1. (Float.abs x) in
  (f (x +. h) -. f (x -. h)) /. (2. *. h)

let close ?(tol = 1e-5) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) /. scale < tol

let check_close ?tol msg a b =
  if not (close ?tol a b) then
    Alcotest.failf "%s: %.12g vs %.12g" msg a b

(* Differentiate [func] in [src] and return (value fn, grad fn) where
   grad maps the float scalar params. *)
let grad_of src func =
  let prog = Parser.parse_program src in
  Typecheck.check_program prog;
  let g = Reverse.differentiate prog func in
  let prog' = Ast.add_func prog g in
  Typecheck.check_program prog';
  let f = Ast.func_exn prog func in
  let nfloat =
    List.length
      (List.filter
         (fun p -> match p.Ast.pty with Ast.Tscalar (Ast.Sflt _) -> true | _ -> false)
         f.Ast.params)
  in
  let value args = Interp.run_float ~prog ~func args in
  let grad args =
    let full = args @ List.init nfloat (fun _ -> Interp.Aflt 0.) in
    let r = Interp.run ~prog:prog' ~func:g.Ast.fname full in
    List.map (fun (_, v) -> Builtins.as_float v) r.Interp.outs
  in
  (value, grad)

(* ------------------------------------------------------------------ *)
(* Derivative rules vs finite differences                             *)

let test_intrinsic_rules () =
  let cases =
    [
      ("sin", "sin(x)", 0.7);
      ("cos", "cos(x)", 0.7);
      ("tan", "tan(x)", 0.4);
      ("exp", "exp(x)", 0.3);
      ("log", "log(x)", 2.0);
      ("log2", "log2(x)", 3.0);
      ("log10", "log10(x)", 3.0);
      ("sqrt", "sqrt(x)", 2.0);
      ("tanh", "tanh(x)", 0.5);
      ("atan", "atan(x)", 0.8);
      ("fabs+", "fabs(x)", 1.5);
      ("fabs-", "fabs(x)", -1.5);
      ("pow", "pow(x, 2.5)", 1.4);
      ("pow exp", "pow(2.0, x)", 1.2);
      ("fmin l", "fmin(x, 10.0)", 1.0);
      ("fmin r", "fmin(x, -10.0)", 1.0);
      ("fmax l", "fmax(x, -10.0)", 1.0);
      ("select", "select(1 == 1, x * 2.0, x * 3.0)", 1.0);
    ]
  in
  List.iter
    (fun (name, expr, x0) ->
      let src = Printf.sprintf "func f(x: f64): f64 { return %s; }" expr in
      let value, grad = grad_of src "f" in
      let ad = List.hd (grad [ Interp.Aflt x0 ]) in
      let num = fd (fun x -> value [ Interp.Aflt x ]) x0 in
      check_close ~tol:1e-4 name ad num)
    cases

let test_cast_smooth_surrogate () =
  (* castf32 is a staircase; its AD rule is the smooth surrogate 1. *)
  let src = "func f(x: f64): f64 { return castf32(x) * 2.0; }" in
  let _, grad = grad_of src "f" in
  Alcotest.(check (float 0.)) "d castf32 = 1" 2.
    (List.hd (grad [ Interp.Aflt 1.3 ]))

let test_piecewise_constant_rules () =
  List.iter
    (fun expr ->
      let src = Printf.sprintf "func f(x: f64): f64 { return %s; }" expr in
      let _, grad = grad_of src "f" in
      Alcotest.(check (float 0.)) (expr ^ " has zero derivative") 0.
        (List.hd (grad [ Interp.Aflt 1.3 ])))
    [ "floor(x)"; "ceil(x)"; "sign(x)"; "itof(ftoi(x))" ]

let test_unknown_intrinsic_rejected () =
  let deriv = Deriv.empty () in
  let prog = Parser.parse_program "func f(x: f64): f64 { return sin(x); }" in
  Alcotest.(check bool) "missing rule" true
    (try
       ignore (Reverse.differentiate ~deriv prog "f");
       false
     with Reverse.Error _ -> true)

let test_deriv_alias () =
  let deriv = Deriv.default () in
  Deriv.alias deriv "mysin" "sin";
  Alcotest.(check bool) "alias exists" true (Deriv.find deriv "mysin" <> None);
  Alcotest.(check bool) "alias of unknown raises" true
    (try
       Deriv.alias deriv "x" "nosuchthing";
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Reverse mode on structured programs                                *)

let structured_src =
  {|
func g(x: f64, y: f64, n: int): f64 {
  var s: f64 = 0.0;
  var t: f64 = x;
  var arr: f64[n];
  for i in 0 .. n {
    t = t * y + sin(x * itof(i + 1));
    if (t > 2.0) { t = t / 2.0; }
    arr[i] = t;
  }
  var k: int = 0;
  while (k < n) {
    s = s + arr[k] * arr[k];
    k = k + 2;
  }
  return sqrt(s + exp(x / 10.0));
}
|}

let test_reverse_vs_fd_structured () =
  let value, grad = grad_of structured_src "g" in
  List.iter
    (fun (x, y) ->
      let args = [ Interp.Aflt x; Interp.Aflt y; Interp.Aint 7 ] in
      match grad args with
      | [ dx; dy ] ->
          check_close "dx"
            (fd (fun x -> value [ Interp.Aflt x; Interp.Aflt y; Interp.Aint 7 ]) x)
            dx;
          check_close "dy"
            (fd (fun y -> value [ Interp.Aflt x; Interp.Aflt y; Interp.Aint 7 ]) y)
            dy
      | _ -> Alcotest.fail "expected two gradients")
    [ (0.9, 0.4); (-0.3, 0.8); (1.7, -0.6) ]

let qcheck_reverse_vs_fd =
  QCheck.Test.make ~count:40 ~name:"reverse mode matches finite differences"
    QCheck.(pair (float_range (-1.5) 1.5) (float_range (-0.9) 0.9))
    (fun (x, y) ->
      let value, grad = grad_of structured_src "g" in
      let args = [ Interp.Aflt x; Interp.Aflt y; Interp.Aint 5 ] in
      match grad args with
      | [ dx; dy ] ->
          close ~tol:1e-3
            (fd (fun x -> value [ Interp.Aflt x; Interp.Aflt y; Interp.Aint 5 ]) x)
            dx
          && close ~tol:1e-3
               (fd (fun y -> value [ Interp.Aflt x; Interp.Aflt y; Interp.Aint 5 ]) y)
               dy
      | _ -> false)

let test_forward_equals_reverse () =
  let prog = Parser.parse_program structured_src in
  let fwd_x = Forward.differentiate prog "g" ~wrt:"x" in
  let fwd_y = Forward.differentiate prog "g" ~wrt:"y" in
  let prog' = Ast.add_func (Ast.add_func prog fwd_x) fwd_y in
  Typecheck.check_program prog';
  let _, grad = grad_of structured_src "g" in
  let args = [ Interp.Aflt 1.1; Interp.Aflt 0.3; Interp.Aint 6 ] in
  let dxf = Interp.run_float ~prog:prog' ~func:fwd_x.Ast.fname args in
  let dyf = Interp.run_float ~prog:prog' ~func:fwd_y.Ast.fname args in
  (match grad args with
  | [ dx; dy ] ->
      check_close ~tol:1e-10 "forward = reverse (x)" dx dxf;
      check_close ~tol:1e-10 "forward = reverse (y)" dy dyf
  | _ -> Alcotest.fail "expected two gradients")

let test_array_param_gradient () =
  let src =
    {|func f(a: f64[], n: int): f64 {
        var s: f64 = 0.0;
        for i in 0 .. n { s = s + a[i] * a[i] * itof(i + 1); }
        return s;
      }|}
  in
  let prog = Parser.parse_program src in
  let g = Reverse.differentiate prog "f" in
  let prog' = Ast.add_func prog g in
  let a = [| 0.5; -1.5; 2.0 |] in
  let d = Array.make 3 0. in
  ignore
    (Interp.run ~prog:prog' ~func:g.Ast.fname
       [ Interp.Afarr a; Interp.Aint 3; Interp.Afarr d ]);
  Array.iteri
    (fun i di ->
      (* d/da_i = 2 a_i (i+1) *)
      check_close ~tol:1e-10 (Printf.sprintf "da[%d]" i)
        (2. *. a.(i) *. float_of_int (i + 1))
        di)
    d

let test_input_restoration () =
  (* The store-all adjoint must restore mutated inputs on the way back. *)
  let src =
    {|func f(a: f64[], n: int): f64 {
        var s: f64 = 0.0;
        for i in 0 .. n { a[i] = a[i] * 2.0; s = s + a[i]; }
        return s;
      }|}
  in
  let prog = Parser.parse_program src in
  let g = Reverse.differentiate prog "f" in
  let prog' = Ast.add_func prog g in
  let a = [| 1.; 2.; 3. |] in
  let d = Array.make 3 0. in
  ignore
    (Interp.run ~prog:prog' ~func:g.Ast.fname
       [ Interp.Afarr a; Interp.Aint 3; Interp.Afarr d ]);
  Alcotest.(check bool) "inputs restored" true (a = [| 1.; 2.; 3. |]);
  Array.iter (fun di -> check_close ~tol:1e-12 "da = 2" 2. di) d

let test_self_referencing_updates () =
  (* x = x*x + x exercises correct adjoint of overwritten variables. *)
  let src =
    {|func f(x: f64): f64 {
        var t: f64 = x;
        t = t * t + t;
        t = t * t + t;
        return t;
      }|}
  in
  let value, grad = grad_of src "f" in
  let x0 = 0.3 in
  check_close "self ref"
    (fd (fun x -> value [ Interp.Aflt x ]) x0)
    (List.hd (grad [ Interp.Aflt x0 ]))

let test_activity_identical_gradients () =
  let prog = Parser.parse_program structured_src in
  let run use_activity =
    let g = Reverse.differentiate ~use_activity prog "g" in
    let prog' = Ast.add_func prog g in
    let r =
      Interp.run ~prog:prog' ~func:g.Ast.fname
        [ Interp.Aflt 0.8; Interp.Aflt 0.5; Interp.Aint 6;
          Interp.Aflt 0.; Interp.Aflt 0. ]
    in
    List.map (fun (_, v) -> Builtins.as_float v) r.Interp.outs
  in
  Alcotest.(check bool) "same gradients with activity" true (run true = run false)

let test_activity_analysis_classification () =
  let src =
    {|func f(x: f64, y: f64): f64 {
        var used: f64 = x * 2.0;
        var unused: f64 = y * 3.0;
        var fromconst: f64 = 1.0;
        fromconst = fromconst + 1.0;
        return used;
      }|}
  in
  let prog = Parser.parse_program src in
  let f = Ast.func_exn prog "f" in
  let a =
    Activity.analyze ~func:f ~independents:[ "x"; "y" ] ~dependents:[ "used" ]
  in
  Alcotest.(check bool) "used active" true (Activity.active a "used");
  Alcotest.(check bool) "x active" true (Activity.active a "x");
  Alcotest.(check bool) "unused not useful" false (Activity.useful a "unused");
  Alcotest.(check bool) "fromconst not varied" false
    (Activity.varied a "fromconst");
  Alcotest.(check bool) "y varied but not active" true
    (Activity.varied a "y" && not (Activity.active a "y"))

let test_reverse_requirements () =
  let reject src =
    let prog = Parser.parse_program src in
    try
      ignore (Reverse.differentiate prog "f");
      false
    with Reverse.Error _ -> true
  in
  Alcotest.(check bool) "int return" true
    (reject "func f(x: f64): int { return 1; }");
  Alcotest.(check bool) "out param" true
    (reject "func f(x: f64, out r: f64): f64 { r = x; return x; }");
  Alcotest.(check bool) "non-tail return" true
    (reject
       "func f(x: f64): f64 { if (x > 0.0) { return x; } return -x; }");
  Alcotest.(check bool) "no return" true
    (reject "func f(x: f64): f64 { var t: f64 = x; t = t + 1.0; }")

let test_hooks_fire_per_assignment () =
  let src =
    {|func f(x: f64): f64 {
        var a: f64 = x * 2.0;
        var b: f64 = a + 1.0;
        return b * b;
      }|}
  in
  let prog = Parser.parse_program src in
  let seen = ref [] in
  let hooks =
    {
      Reverse.no_hooks with
      Reverse.on_assign =
        (fun ctx ->
          seen := ctx.Reverse.lhs_base :: !seen;
          []);
    }
  in
  ignore (Reverse.differentiate ~hooks prog "f");
  (* assignments: a (decl init), b (decl init), _ret = b*b; hooks fire in
     source order during generation *)
  Alcotest.(check (list string)) "hook order" [ "a"; "b"; "_ret" ]
    (List.rev !seen)

let test_hook_extra_params_and_epilogue () =
  let src = "func f(x: f64): f64 { var t: f64 = x * x; return t; }" in
  let prog = Parser.parse_program src in
  let hooks =
    {
      Reverse.extra_params =
        [ { Ast.pname = "_count"; pty = Ast.Tscalar Ast.Sint; pmode = Ast.Out } ];
      prologue = (fun _ -> []);
      on_assign =
        (fun _ ->
          [ Ast.Assign (Ast.Lvar "_count",
                        Ast.Binop (Ast.Add, Ast.Var "_count", Ast.Iconst 1)) ]);
      epilogue = (fun _ -> []);
    }
  in
  let g = Reverse.differentiate ~hooks prog "f" in
  let prog' = Ast.add_func prog g in
  Typecheck.check_program prog';
  let r =
    Interp.run ~prog:prog' ~func:g.Ast.fname
      [ Interp.Aflt 2.; Interp.Aflt 0.; Interp.Aint 0 ]
  in
  (* two float assignments fire the hook: [t = x*x] and the synthetic
     return copy [_ret = t] *)
  Alcotest.(check bool) "hook statements executed" true
    (List.assoc "_count" r.Interp.outs = Builtins.I 2)

let test_hook_name_collision_rejected () =
  let src = "func f(_fp_error: f64): f64 { return _fp_error; }" in
  let prog = Parser.parse_program src in
  Alcotest.(check bool) "collision detected" true
    (try
       ignore
         (Cheffp_core.Estimate.estimate_error ~prog ~func:"f" ());
       false
     with Cheffp_core.Estimate.Error _ -> true)

let test_generated_code_roundtrips () =
  let prog = Parser.parse_program structured_src in
  let g = Reverse.differentiate prog "g" in
  let printed = Pp.func_to_string g in
  let reparsed = Parser.parse_program ("func dummy(): f64 { return 0.0; }\n" ^ printed) in
  Alcotest.(check bool) "generated code reparses" true
    (match Ast.find_func reparsed g.Ast.fname with Some _ -> true | None -> false)

let test_inlined_function_differentiation () =
  let src =
    {|func cube(v: f64): f64 { return v * v * v; }
      func f(x: f64): f64 { return cube(sin(x)) + cube(x); }|}
  in
  let value, grad = grad_of src "f" in
  let x0 = 0.8 in
  check_close "through inlining"
    (fd (fun x -> value [ Interp.Aflt x ]) x0)
    (List.hd (grad [ Interp.Aflt x0 ]))

let test_forward_requirements () =
  let prog =
    Parser.parse_program
      {|func f(a: f64[], n: int): f64 {
          for i in 0 .. n { a[i] = 2.0 * a[i]; }
          return a[0];
        }|}
  in
  Alcotest.(check bool) "forward rejects array writes" true
    (try
       ignore (Forward.differentiate prog "f" ~wrt:"a");
       false
     with Forward.Error _ -> true)

let test_derivative_params_preview () =
  let prog =
    Parser.parse_program
      "func f(x: f64, n: int, a: f64[]): f64 { return x + a[0]; }"
  in
  let ps = Reverse.derivative_params (Ast.func_exn prog "f") in
  Alcotest.(check (list string)) "names" [ "_d_x"; "_d_a" ]
    (List.map (fun p -> p.Ast.pname) ps);
  Alcotest.(check bool) "modes out" true
    (List.for_all (fun p -> p.Ast.pmode = Ast.Out) ps)

let () =
  Alcotest.run "ad"
    [
      ( "deriv-rules",
        [
          Alcotest.test_case "intrinsics vs fd" `Quick test_intrinsic_rules;
          Alcotest.test_case "piecewise constants" `Quick
            test_piecewise_constant_rules;
          Alcotest.test_case "cast surrogate" `Quick test_cast_smooth_surrogate;
          Alcotest.test_case "missing rule rejected" `Quick
            test_unknown_intrinsic_rejected;
          Alcotest.test_case "alias" `Quick test_deriv_alias;
        ] );
      ( "reverse",
        [
          Alcotest.test_case "structured vs fd" `Quick
            test_reverse_vs_fd_structured;
          QCheck_alcotest.to_alcotest qcheck_reverse_vs_fd;
          Alcotest.test_case "array gradients" `Quick test_array_param_gradient;
          Alcotest.test_case "input restoration" `Quick test_input_restoration;
          Alcotest.test_case "self-referencing updates" `Quick
            test_self_referencing_updates;
          Alcotest.test_case "requirements" `Quick test_reverse_requirements;
          Alcotest.test_case "generated code reparses" `Quick
            test_generated_code_roundtrips;
          Alcotest.test_case "through inlining" `Quick
            test_inlined_function_differentiation;
          Alcotest.test_case "derivative params preview" `Quick
            test_derivative_params_preview;
        ] );
      ( "forward",
        [
          Alcotest.test_case "forward = reverse" `Quick
            test_forward_equals_reverse;
          Alcotest.test_case "requirements" `Quick test_forward_requirements;
        ] );
      ( "activity",
        [
          Alcotest.test_case "identical gradients" `Quick
            test_activity_identical_gradients;
          Alcotest.test_case "classification" `Quick
            test_activity_analysis_classification;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "fire per assignment" `Quick
            test_hooks_fire_per_assignment;
          Alcotest.test_case "extra params & statements" `Quick
            test_hook_extra_params_and_epilogue;
          Alcotest.test_case "name collision" `Quick
            test_hook_name_collision_rejected;
        ] );
    ]
