open Cheffp_precision

let check_float = Alcotest.(check (float 0.))

(* ------------------------------------------------------------------ *)
(* Fp formats and rounding                                            *)

let test_format_metadata () =
  Alcotest.(check int) "f16 bits" 16 (Fp.bits Fp.F16);
  Alcotest.(check int) "f32 bits" 32 (Fp.bits Fp.F32);
  Alcotest.(check int) "f64 bits" 64 (Fp.bits Fp.F64);
  Alcotest.(check int) "f32 bytes" 4 (Fp.bytes Fp.F32);
  Alcotest.(check int) "f16 mantissa" 10 (Fp.mantissa_bits Fp.F16);
  Alcotest.(check int) "f32 mantissa" 23 (Fp.mantissa_bits Fp.F32);
  Alcotest.(check int) "f64 mantissa" 52 (Fp.mantissa_bits Fp.F64)

let test_format_strings () =
  List.iter
    (fun fmt ->
      Alcotest.(check bool) "string roundtrip" true
        (Fp.format_of_string (Fp.format_to_string fmt) = Some fmt))
    [ Fp.F16; Fp.F32; Fp.F64 ];
  Alcotest.(check bool) "aliases" true
    (Fp.format_of_string "double" = Some Fp.F64
    && Fp.format_of_string "single" = Some Fp.F32
    && Fp.format_of_string "half" = Some Fp.F16
    && Fp.format_of_string "nope" = None)

let test_epsilon_values () =
  check_float "f64 eps" epsilon_float (Fp.epsilon Fp.F64);
  check_float "f32 eps" (Float.ldexp 1. (-23)) (Fp.epsilon Fp.F32);
  check_float "f16 eps" (Float.ldexp 1. (-10)) (Fp.epsilon Fp.F16);
  check_float "unit roundoff is half eps" (Fp.epsilon Fp.F32 /. 2.)
    (Fp.unit_roundoff Fp.F32)

let test_round_f64_identity () =
  List.iter
    (fun x -> check_float "identity" x (Fp.round Fp.F64 x))
    [ 0.; 1.; -1.; 0.1; 1e300; -1e-300; Float.infinity ]

let test_round_f32_known_values () =
  (* 0.1 in binary32 is 13421773 * 2^-27. *)
  check_float "0.1f" (13421773. *. Float.ldexp 1. (-27)) (Fp.round Fp.F32 0.1);
  check_float "exact small int" 123. (Fp.round Fp.F32 123.);
  check_float "2^-149 subnormal survives" (Float.ldexp 1. (-149))
    (Fp.round Fp.F32 (Float.ldexp 1. (-149)));
  Alcotest.(check bool) "overflow to inf" true
    (Fp.round Fp.F32 1e300 = Float.infinity);
  Alcotest.(check bool) "negative overflow" true
    (Fp.round Fp.F32 (-1e300) = Float.neg_infinity)

let test_round_f16_known_values () =
  check_float "1.0" 1.0 (Fp.round Fp.F16 1.0);
  check_float "exact half quantum" 1.5 (Fp.round Fp.F16 1.5);
  check_float "65504 max finite" 65504. (Fp.round Fp.F16 65504.);
  Alcotest.(check bool) "65520 ties to inf" true
    (Fp.round Fp.F16 65520. = Float.infinity);
  check_float "65519.9 stays finite" 65504. (Fp.round Fp.F16 65519.9);
  Alcotest.(check bool) "1e6 overflows" true
    (Fp.round Fp.F16 1e6 = Float.infinity);
  (* Smallest f16 subnormal is 2^-24; half of it rounds to zero (RNE tie
     to even = 0), anything above half rounds up. *)
  check_float "tiny to zero" 0. (Fp.round Fp.F16 (Float.ldexp 1. (-26)));
  check_float "subnormal min" (Float.ldexp 1. (-24))
    (Fp.round Fp.F16 (Float.ldexp 1.2 (-24)));
  (* RNE: 1 + 2^-11 is exactly halfway between 1 and 1+2^-10: ties to even = 1 *)
  check_float "ties to even down" 1.0 (Fp.round Fp.F16 (1. +. Float.ldexp 1. (-11)));
  (* 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: even is 1+2^-9 *)
  check_float "ties to even up"
    (1. +. Float.ldexp 1. (-9))
    (Fp.round Fp.F16 (1. +. (3. *. Float.ldexp 1. (-11))))

let test_round_preserves_specials () =
  List.iter
    (fun fmt ->
      Alcotest.(check bool) "nan" true (Float.is_nan (Fp.round fmt Float.nan));
      Alcotest.(check bool) "+inf" true (Fp.round fmt Float.infinity = Float.infinity);
      Alcotest.(check bool) "-inf" true
        (Fp.round fmt Float.neg_infinity = Float.neg_infinity);
      Alcotest.(check bool) "signed zero" true
        (1. /. Fp.round fmt (-0.) = Float.neg_infinity))
    [ Fp.F16; Fp.F32 ]

let test_representable () =
  Alcotest.(check bool) "1.0 representable" true (Fp.representable Fp.F16 1.0);
  Alcotest.(check bool) "0.1 not f32" false (Fp.representable Fp.F32 0.1);
  Alcotest.(check bool) "0.1 not f16" false (Fp.representable Fp.F16 0.1);
  Alcotest.(check bool) "nan representable" true (Fp.representable Fp.F32 Float.nan)

let test_representation_error () =
  check_float "exact" 0. (Fp.representation_error Fp.F32 0.5);
  Alcotest.(check bool) "0.1 error sign and size" true
    (let e = Fp.representation_error Fp.F32 0.1 in
     Float.abs e > 0. && Float.abs e < Fp.epsilon Fp.F32 *. 0.1)

let test_max_finite () =
  check_float "f16 max" 65504. (Fp.max_finite Fp.F16);
  Alcotest.(check bool) "f32 max finite is representable" true
    (Fp.representable Fp.F32 (Fp.max_finite Fp.F32)
    && Fp.max_finite Fp.F32 < Float.infinity
    && Fp.max_finite Fp.F32 > 3.4e38);
  check_float "f64 max" Float.max_float (Fp.max_finite Fp.F64);
  Alcotest.(check bool) "rounding above max overflows" true
    (Fp.round Fp.F32 (Fp.max_finite Fp.F32 *. 1.001) = Float.infinity
     || Fp.round Fp.F32 (Fp.max_finite Fp.F32 *. 1.001) = Fp.max_finite Fp.F32)

let test_ulp () =
  check_float "f32 ulp at 1" (Float.ldexp 1. (-23)) (Fp.ulp Fp.F32 1.0);
  check_float "f32 ulp at 2" (Float.ldexp 1. (-22)) (Fp.ulp Fp.F32 2.0);
  check_float "f16 ulp at 1" (Float.ldexp 1. (-10)) (Fp.ulp Fp.F16 1.0)

let f32_matches_int32 =
  QCheck.Test.make ~count:1000 ~name:"round F32 = Int32 bits roundtrip"
    QCheck.(float_range (-1e30) 1e30)
    (fun x ->
      let ours = Fp.round Fp.F32 x in
      let native = Int32.float_of_bits (Int32.bits_of_float x) in
      ours = native || (Float.is_nan ours && Float.is_nan native))

let round_idempotent fmt name =
  QCheck.Test.make ~count:1000 ~name
    QCheck.(float_range (-1e5) 1e5)
    (fun x ->
      let r = Fp.round fmt x in
      Fp.round fmt r = r)

let round_error_bounded =
  QCheck.Test.make ~count:1000 ~name:"f16 rounding error within half ulp"
    QCheck.(float_range 1e-3 6e4)
    (fun x ->
      let r = Fp.round Fp.F16 x in
      r = Float.infinity || Float.abs (x -. r) <= Fp.ulp Fp.F16 x /. 2. +. 1e-18)

let round_monotone fmt name =
  QCheck.Test.make ~count:1000 ~name
    QCheck.(pair (float_range (-1e4) 1e4) (float_range (-1e4) 1e4))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Fp.round fmt lo <= Fp.round fmt hi)

let f16_nearest =
  QCheck.Test.make ~count:500 ~name:"f16 result is nearest representable"
    QCheck.(float_range 1e-2 1e4)
    (fun x ->
      let r = Fp.round Fp.F16 x in
      (* No representable value can be strictly closer: check the two
         neighbours one ulp away. *)
      let u = Fp.ulp Fp.F16 r in
      Float.abs (x -. r) <= Float.abs (x -. (r +. u)) +. 1e-18
      && Float.abs (x -. r) <= Float.abs (x -. (r -. u)) +. 1e-18)

(* ------------------------------------------------------------------ *)
(* Config                                                             *)

let test_config_basics () =
  let c = Config.double in
  Alcotest.(check bool) "double default" true (Config.is_uniform_double c);
  Alcotest.(check bool) "format_of default" true
    (Fp.equal_format (Config.format_of c "x") Fp.F64);
  let c = Config.demote c "x" Fp.F32 in
  Alcotest.(check bool) "override" true
    (Fp.equal_format (Config.format_of c "x") Fp.F32);
  Alcotest.(check bool) "has_override" true (Config.has_override c "x");
  Alcotest.(check bool) "no override" false (Config.has_override c "y");
  Alcotest.(check bool) "not uniform double" false (Config.is_uniform_double c)

let test_config_demote_all () =
  let c = Config.demote_all Config.double [ "a"; "b" ] Fp.F16 in
  Alcotest.(check int) "two demoted" 2 (List.length (Config.demoted c));
  Alcotest.(check bool) "sorted bindings" true
    (List.map fst (Config.demoted c) = [ "a"; "b" ])

let test_config_redemote () =
  let c = Config.demote (Config.demote Config.double "x" Fp.F16) "x" Fp.F32 in
  Alcotest.(check bool) "latest wins" true
    (Fp.equal_format (Config.format_of c "x") Fp.F32)

let test_config_uniform () =
  let c = Config.uniform Fp.F32 in
  Alcotest.(check bool) "default f32" true
    (Fp.equal_format (Config.default_format c) Fp.F32);
  Alcotest.(check bool) "applies to any var" true
    (Fp.equal_format (Config.format_of c "anything") Fp.F32)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_config_to_string () =
  let c = Config.demote Config.double "x" Fp.F32 in
  let s = Config.to_string c in
  Alcotest.(check bool) "mentions x:f32" true (contains s "x:f32")

(* ------------------------------------------------------------------ *)
(* Cost                                                               *)

let test_cost_format_scaling () =
  let m = Cost.default in
  check_float "f64 basic" 1.0 (Cost.op m Fp.F64 Cost.Basic);
  check_float "f32 half" 0.5 (Cost.op m Fp.F32 Cost.Basic);
  check_float "f16 quarter" 0.25 (Cost.op m Fp.F16 Cost.Basic);
  Alcotest.(check bool) "division dearer" true
    (Cost.op m Fp.F64 Cost.Division > Cost.op m Fp.F64 Cost.Basic);
  Alcotest.(check bool) "transcendental dearest" true
    (Cost.op m Fp.F64 Cost.Transcendental > Cost.op m Fp.F64 Cost.Square_root
    || Cost.op m Fp.F64 Cost.Transcendental > Cost.op m Fp.F64 Cost.Division)

let test_cost_approx_discount () =
  let m = Cost.default in
  Alcotest.(check bool) "approx cheaper" true
    (Cost.approx m Cost.Transcendental < Cost.op m Fp.F64 Cost.Transcendental)

let test_cost_custom () =
  let m = Cost.make ~basic:2. ~cast:1. ~narrow_factor:0.1 () in
  check_float "custom basic" 2. (Cost.op m Fp.F64 Cost.Basic);
  check_float "custom narrow" 0.2 (Cost.op m Fp.F32 Cost.Basic);
  check_float "custom cast" 1. (Cost.cast m)

let test_cost_counter () =
  let c = Cost.Counter.create Cost.default in
  Cost.Counter.charge_op c Fp.F64 Cost.Basic;
  Cost.Counter.charge_op c Fp.F32 Cost.Basic;
  Cost.Counter.charge_cast c;
  Cost.Counter.charge_approx c Cost.Transcendental;
  check_float "total" (1.0 +. 0.5 +. 0.25 +. 2.5) (Cost.Counter.total c);
  Alcotest.(check int) "ops" 3 (Cost.Counter.ops c);
  Alcotest.(check int) "casts" 1 (Cost.Counter.casts c);
  Cost.Counter.reset c;
  check_float "reset" 0. (Cost.Counter.total c);
  Alcotest.(check int) "reset casts" 0 (Cost.Counter.casts c)

let test_cost_op_class () =
  Alcotest.(check bool) "sqrt" true
    (Cost.op_class_of_intrinsic "sqrt" = Cost.Square_root);
  Alcotest.(check bool) "fabs basic" true
    (Cost.op_class_of_intrinsic "fabs" = Cost.Basic);
  Alcotest.(check bool) "unknown transcendental" true
    (Cost.op_class_of_intrinsic "bessel_j0" = Cost.Transcendental)

let () =
  Alcotest.run "precision"
    [
      ( "fp",
        [
          Alcotest.test_case "format metadata" `Quick test_format_metadata;
          Alcotest.test_case "format strings" `Quick test_format_strings;
          Alcotest.test_case "epsilon values" `Quick test_epsilon_values;
          Alcotest.test_case "f64 identity" `Quick test_round_f64_identity;
          Alcotest.test_case "f32 known values" `Quick test_round_f32_known_values;
          Alcotest.test_case "f16 known values" `Quick test_round_f16_known_values;
          Alcotest.test_case "specials" `Quick test_round_preserves_specials;
          Alcotest.test_case "representable" `Quick test_representable;
          Alcotest.test_case "representation error" `Quick
            test_representation_error;
          Alcotest.test_case "ulp" `Quick test_ulp;
          Alcotest.test_case "max finite" `Quick test_max_finite;
          QCheck_alcotest.to_alcotest f32_matches_int32;
          QCheck_alcotest.to_alcotest (round_idempotent Fp.F32 "f32 idempotent");
          QCheck_alcotest.to_alcotest (round_idempotent Fp.F16 "f16 idempotent");
          QCheck_alcotest.to_alcotest round_error_bounded;
          QCheck_alcotest.to_alcotest (round_monotone Fp.F32 "f32 monotone");
          QCheck_alcotest.to_alcotest (round_monotone Fp.F16 "f16 monotone");
          QCheck_alcotest.to_alcotest f16_nearest;
        ] );
      ( "config",
        [
          Alcotest.test_case "basics" `Quick test_config_basics;
          Alcotest.test_case "demote_all" `Quick test_config_demote_all;
          Alcotest.test_case "redemote" `Quick test_config_redemote;
          Alcotest.test_case "uniform" `Quick test_config_uniform;
          Alcotest.test_case "to_string" `Quick test_config_to_string;
        ] );
      ( "cost",
        [
          Alcotest.test_case "format scaling" `Quick test_cost_format_scaling;
          Alcotest.test_case "approx discount" `Quick test_cost_approx_discount;
          Alcotest.test_case "custom model" `Quick test_cost_custom;
          Alcotest.test_case "counter" `Quick test_cost_counter;
          Alcotest.test_case "op classes" `Quick test_cost_op_class;
        ] );
    ]
