open Cheffp_ir
module B = Cheffp_benchmarks
module Fp = Cheffp_precision.Fp

let check_exact = Alcotest.(check (float 0.))

(* The MiniFP programs and the native OCaml functors implement the same
   algorithm: on identical inputs the results must agree bit for bit
   (both run in binary64 with the same operation order). *)

let test_arclength_ir_equals_native () =
  List.iter
    (fun n ->
      check_exact
        (Printf.sprintf "n=%d" n)
        (B.Arclength.reference ~n)
        (Interp.run_float ~prog:B.Arclength.program ~func:B.Arclength.func_name
           (B.Arclength.args ~n)))
    [ 1; 10; 500 ]

let test_arclength_converges () =
  (* Arc length of g over [0,pi] is about 5.7957763... *)
  let v = B.Arclength.reference ~n:20000 in
  Alcotest.(check bool) "plausible value" true (Float.abs (v -. 5.7957763) < 1e-3)

let test_simpsons_ir_equals_native () =
  List.iter
    (fun n ->
      check_exact
        (Printf.sprintf "n=%d" n)
        (B.Simpsons.reference ~a:0. ~b:Float.pi ~n)
        (Interp.run_float ~prog:B.Simpsons.program ~func:B.Simpsons.func_name
           (B.Simpsons.args ~a:0. ~b:Float.pi ~n)))
    [ 1; 7; 200 ]

let test_simpsons_integrates_sine () =
  (* integral of sin over [0,pi] = 2, Simpson error O(h^4) *)
  let v = B.Simpsons.reference ~a:0. ~b:Float.pi ~n:200 in
  Alcotest.(check bool) "close to 2" true (Float.abs (v -. 2.) < 1e-9)

let test_kmeans_ir_equals_native () =
  let w = B.Kmeans.generate ~npoints:300 () in
  check_exact "kmeans" (B.Kmeans.reference w)
    (Interp.run_float ~prog:B.Kmeans.program ~func:B.Kmeans.func_name
       (B.Kmeans.args w))

let test_kmeans_attributes_f32_exact () =
  let w = B.Kmeans.generate ~npoints:500 () in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "attribute representable" true
        (Fp.representable Fp.F32 v))
    w.B.Kmeans.attributes;
  Alcotest.(check bool) "some cluster centre is not representable" true
    (Array.exists (fun v -> not (Fp.representable Fp.F32 v)) w.B.Kmeans.clusters)

let test_kmeans_workload_shape () =
  let w = B.Kmeans.generate ~npoints:50 ~nclusters:3 ~nfeatures:2 () in
  Alcotest.(check int) "attributes size" 100 (Array.length w.B.Kmeans.attributes);
  Alcotest.(check int) "clusters size" 6 (Array.length w.B.Kmeans.clusters);
  let w' = B.Kmeans.generate ~npoints:50 ~nclusters:3 ~nfeatures:2 () in
  Alcotest.(check bool) "deterministic" true
    (w.B.Kmeans.attributes = w'.B.Kmeans.attributes)

let test_kmeans_total_positive () =
  let w = B.Kmeans.generate ~npoints:100 () in
  Alcotest.(check bool) "positive distance total" true (B.Kmeans.reference w > 0.)

let test_hpccg_ir_equals_native () =
  let w = B.Hpccg.generate ~nx:4 ~ny:3 ~nz:3 ~max_iter:12 () in
  check_exact "hpccg" (B.Hpccg.reference w)
    (Interp.run_float ~prog:B.Hpccg.program ~func:B.Hpccg.func_name
       (B.Hpccg.args w))

let test_hpccg_solves () =
  (* After enough iterations the CG solution is all-ones: x-norm is
     sqrt(n). *)
  let w = B.Hpccg.generate ~nx:4 ~ny:4 ~nz:4 ~max_iter:60 () in
  let v = B.Hpccg.reference w in
  Alcotest.(check (float 1e-8)) "||x|| = sqrt(n)" (sqrt 64.) v

let test_hpccg_split_cutoff_at_end_is_identity () =
  let w = B.Hpccg.generate ~nx:3 ~ny:3 ~nz:3 ~max_iter:10 () in
  let full =
    Interp.run_float ~prog:B.Hpccg.program ~func:B.Hpccg.func_name (B.Hpccg.args w)
  in
  let split =
    Interp.run_float ~prog:B.Hpccg.program_split ~func:B.Hpccg.split_func_name
      (B.Hpccg.split_args w ~cutoff:10)
  in
  check_exact "no phase 2 = identical" full split

let test_hpccg_split_error_small () =
  let w = B.Hpccg.generate ~nx:4 ~ny:4 ~nz:4 ~max_iter:40 () in
  let full =
    Interp.run_float ~prog:B.Hpccg.program ~func:B.Hpccg.func_name (B.Hpccg.args w)
  in
  let split =
    Interp.run_float ~prog:B.Hpccg.program_split ~func:B.Hpccg.split_func_name
      (B.Hpccg.split_args w ~cutoff:25)
  in
  Alcotest.(check bool) "late split harmless" true
    (Float.abs (full -. split) < 1e-8)

let test_blackscholes_ir_equals_native () =
  let w = B.Blackscholes.generate ~n:100 () in
  check_exact "blackscholes"
    (B.Blackscholes.reference w)
    (Interp.run_float
       ~prog:(B.Blackscholes.program B.Blackscholes.Exact)
       ~func:B.Blackscholes.func_name (B.Blackscholes.args w))

let test_blackscholes_put_call_parity () =
  (* With the CNDF polynomial, CNDF(x)+CNDF(-x)=1 exactly, so put-call
     parity c - p = s - k e^{-rt} holds to rounding. *)
  let m = B.Blackscholes.mathset_of B.Blackscholes.Exact in
  let s = 42. and k = 40. and r = 0.05 and v = 0.3 and t = 0.75 in
  let c = B.Blackscholes.price_native m ~s ~k ~r ~v ~t ~otype:0 in
  let p = B.Blackscholes.price_native m ~s ~k ~r ~v ~t ~otype:1 in
  Alcotest.(check (float 1e-9)) "parity" (s -. (k *. exp (-.r *. t))) (c -. p)

let test_blackscholes_price_sane () =
  let m = B.Blackscholes.mathset_of B.Blackscholes.Exact in
  let c = B.Blackscholes.price_native m ~s:60. ~k:40. ~r:0.05 ~v:0.2 ~t:1. ~otype:0 in
  (* Deep in-the-money call is worth at least its intrinsic value. *)
  Alcotest.(check bool) "call above intrinsic" true
    (c >= 60. -. 40. && c < 60.)

let test_blackscholes_fast_configs_differ () =
  let w = B.Blackscholes.generate ~n:200 () in
  let total config =
    Interp.run_float
      ~builtins:
        (let b = Builtins.create () in
         Cheffp_fastapprox.Fastapprox.register_builtins b;
         b)
      ~prog:(B.Blackscholes.program config)
      ~func:B.Blackscholes.func_name (B.Blackscholes.args w)
  in
  let exact = total B.Blackscholes.Exact in
  let fast1 = total B.Blackscholes.Fast_log_sqrt in
  let fast2 = total B.Blackscholes.Fast_log_sqrt_exp in
  Alcotest.(check bool) "approx changes result" true
    (exact <> fast1 && fast1 <> fast2);
  Alcotest.(check bool) "but stays close" true
    (Float.abs (exact -. fast2) /. Float.abs exact < 1e-2)

let test_blackscholes_approx_pairs () =
  Alcotest.(check (list (pair string string))) "exact has no pairs" []
    (B.Blackscholes.approx_pairs B.Blackscholes.Exact);
  let p1 = B.Blackscholes.approx_pairs B.Blackscholes.Fast_log_sqrt in
  Alcotest.(check bool) "log and sqrt mapped" true
    (List.mem ("lsk", "log") p1 && List.mem ("tt", "sqrt") p1
    && not (List.exists (fun (_, f) -> f = "exp") p1));
  let p2 = B.Blackscholes.approx_pairs B.Blackscholes.Fast_log_sqrt_exp in
  (* cndf is inlined twice: both copies of garg must be mapped *)
  let exp_vars = List.filter (fun (_, f) -> f = "exp") p2 in
  Alcotest.(check bool) "three exp sites" true (List.length exp_vars = 3)

let test_workloads_deterministic () =
  let w1 = B.Blackscholes.generate ~n:50 () in
  let w2 = B.Blackscholes.generate ~n:50 () in
  Alcotest.(check bool) "same options" true (w1.B.Blackscholes.strike = w2.B.Blackscholes.strike);
  let w3 = B.Blackscholes.generate ~seed:99L ~n:50 () in
  Alcotest.(check bool) "seed changes data" true
    (w1.B.Blackscholes.strike <> w3.B.Blackscholes.strike)

let test_programs_pp_roundtrip () =
  List.iter
    (fun prog ->
      let printed = Pp.program_to_string prog in
      Alcotest.(check bool) "benchmark program roundtrips" true
        (Parser.parse_program printed = prog))
    [
      B.Arclength.program;
      B.Simpsons.program;
      B.Kmeans.program;
      B.Hpccg.program;
      B.Hpccg.program_split;
      B.Blackscholes.program B.Blackscholes.Exact;
    ]

let test_kmeans_full_clustering () =
  let w = B.Kmeans.generate ~npoints:2_000 () in
  let exact = B.Kmeans.cluster w in
  Alcotest.(check int) "everyone assigned" 0
    (Array.fold_left
       (fun acc c -> if c < 0 || c >= w.B.Kmeans.nclusters then acc + 1 else acc)
       0 exact.B.Kmeans.assignments);
  Alcotest.(check bool) "some iterations ran" true (exact.B.Kmeans.iterations >= 1);
  (* binary32 kernel reproduces the clustering on representable data *)
  let demoted =
    B.Kmeans.cluster
      ~distance:(B.Kmeans.rounded_distance Fp.F32 w)
      w
  in
  Alcotest.(check bool) "assignments identical" true
    (exact.B.Kmeans.assignments = demoted.B.Kmeans.assignments);
  (* a half-precision kernel, by contrast, is allowed to flip points *)
  let h = B.Kmeans.cluster ~distance:(B.Kmeans.rounded_distance Fp.F16 w) w in
  Alcotest.(check bool) "f16 clustering still total" true
    (Array.for_all (fun c -> c >= 0) h.B.Kmeans.assignments)

(* FPBench-style kernel suite *)

let test_fpcore_kernels_parse () =
  List.iter
    (fun kern -> ignore (B.Fpcore.program kern))
    B.Fpcore.kernels;
  Alcotest.(check bool) "13 kernels" true (List.length B.Fpcore.kernels >= 12);
  Alcotest.(check bool) "find works" true
    (B.Fpcore.find "doppler" <> None && B.Fpcore.find "nope" = None)

let test_fpcore_estimates_bound_actuals () =
  List.iter
    (fun kern ->
      let prog = B.Fpcore.program kern in
      let func = kern.B.Fpcore.func_name in
      let args = kern.B.Fpcore.args in
      let est =
        Cheffp_core.Estimate.estimate_error
          ~model:(Cheffp_core.Model.adapt ())
          ~prog ~func ()
      in
      let report = Cheffp_core.Estimate.run est args in
      let reference = Interp.run_float ~prog ~func args in
      let mixed =
        Interp.run_float
          ~config:(Cheffp_precision.Config.uniform Fp.F32)
          ~mode:Cheffp_precision.Config.Extended ~prog ~func args
      in
      let actual = Float.abs (mixed -. reference) in
      let estd = report.Cheffp_core.Estimate.total_error in
      Alcotest.(check bool)
        (kern.B.Fpcore.name ^ ": estimate bounds actual")
        true (estd >= actual *. 0.99);
      (* and it is not a vacuous bound *)
      Alcotest.(check bool)
        (kern.B.Fpcore.name ^ ": bound within 10^4 of actual")
        true
        (actual = 0. || estd <= actual *. 1e4))
    B.Fpcore.kernels

let test_fpcore_gradients_vs_fd () =
  List.iter
    (fun kern ->
      let prog = B.Fpcore.program kern in
      let func = kern.B.Fpcore.func_name in
      let args = kern.B.Fpcore.args in
      let est = Cheffp_core.Estimate.estimate_error ~prog ~func () in
      let report = Cheffp_core.Estimate.run est args in
      (* finite differences on the first float scalar argument *)
      match (report.Cheffp_core.Estimate.gradients, args) with
      | (pname, ad) :: _, Interp.Aflt x0 :: rest ->
          let value x = Interp.run_float ~prog ~func (Interp.Aflt x :: rest) in
          let h = 1e-6 *. Float.max 1. (Float.abs x0) in
          let fd = (value (x0 +. h) -. value (x0 -. h)) /. (2. *. h) in
          let scale = Float.max 1. (Float.abs fd) in
          Alcotest.(check bool)
            (Printf.sprintf "%s: d/d%s matches FD" kern.B.Fpcore.name pname)
            true
            (Float.abs (ad -. fd) /. scale < 1e-3)
      | _ -> ())
    B.Fpcore.kernels

let () =
  Alcotest.run "benchmarks"
    [
      ( "arclength",
        [
          Alcotest.test_case "ir = native" `Quick test_arclength_ir_equals_native;
          Alcotest.test_case "value" `Quick test_arclength_converges;
        ] );
      ( "simpsons",
        [
          Alcotest.test_case "ir = native" `Quick test_simpsons_ir_equals_native;
          Alcotest.test_case "integrates sine" `Quick
            test_simpsons_integrates_sine;
        ] );
      ( "kmeans",
        [
          Alcotest.test_case "ir = native" `Quick test_kmeans_ir_equals_native;
          Alcotest.test_case "attributes f32-exact" `Quick
            test_kmeans_attributes_f32_exact;
          Alcotest.test_case "workload shape" `Quick test_kmeans_workload_shape;
          Alcotest.test_case "total positive" `Quick test_kmeans_total_positive;
          Alcotest.test_case "full clustering" `Quick test_kmeans_full_clustering;
        ] );
      ( "hpccg",
        [
          Alcotest.test_case "ir = native" `Quick test_hpccg_ir_equals_native;
          Alcotest.test_case "solves" `Quick test_hpccg_solves;
          Alcotest.test_case "split identity" `Quick
            test_hpccg_split_cutoff_at_end_is_identity;
          Alcotest.test_case "split error small" `Quick
            test_hpccg_split_error_small;
        ] );
      ( "blackscholes",
        [
          Alcotest.test_case "ir = native" `Quick
            test_blackscholes_ir_equals_native;
          Alcotest.test_case "put-call parity" `Quick
            test_blackscholes_put_call_parity;
          Alcotest.test_case "price sane" `Quick test_blackscholes_price_sane;
          Alcotest.test_case "fast configs" `Quick
            test_blackscholes_fast_configs_differ;
          Alcotest.test_case "approx pairs" `Quick test_blackscholes_approx_pairs;
        ] );
      ( "fpcore-suite",
        [
          Alcotest.test_case "kernels parse" `Quick test_fpcore_kernels_parse;
          Alcotest.test_case "estimates bound actuals" `Quick
            test_fpcore_estimates_bound_actuals;
          Alcotest.test_case "gradients vs FD" `Quick test_fpcore_gradients_vs_fd;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "deterministic" `Quick test_workloads_deterministic;
          Alcotest.test_case "programs roundtrip" `Quick
            test_programs_pp_roundtrip;
        ] );
    ]
