test/test_sparse.ml: Alcotest Array Cg Cheffp_sparse Cheffp_util Csr Int64 Printf QCheck QCheck_alcotest Vec
