test/test_fastapprox.mli:
