test/test_core.ml: Alcotest Array Ast Cheffp_core Cheffp_ir Cheffp_precision Float Interp List Option Parser Pp Printf String Typecheck
