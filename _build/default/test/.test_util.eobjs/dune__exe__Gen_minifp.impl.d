test/gen_minifp.ml: Ast Cheffp_ir Cheffp_precision List Pp Printf QCheck
