test/test_integration.ml: Alcotest Array Builtins Cheffp_ad Cheffp_adapt Cheffp_benchmarks Cheffp_core Cheffp_fastapprox Cheffp_ir Cheffp_precision Cheffp_util Float Interp List
