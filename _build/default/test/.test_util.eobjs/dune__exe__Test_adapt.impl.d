test/test_adapt.ml: Alcotest Cheffp_adapt Cheffp_benchmarks Cheffp_core Cheffp_precision Float List
