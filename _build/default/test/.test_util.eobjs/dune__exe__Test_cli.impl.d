test/test_cli.ml: Alcotest Buffer Filename Fun List Printf String Sys Unix
