test/test_ad.ml: Alcotest Array Ast Builtins Cheffp_ad Cheffp_core Cheffp_ir Float Interp List Parser Pp Printf QCheck QCheck_alcotest Typecheck
