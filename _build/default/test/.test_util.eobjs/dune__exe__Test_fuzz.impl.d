test/test_fuzz.ml: Alcotest Ast Builtins Cheffp_ad Cheffp_core Cheffp_ir Cheffp_precision Compile Float Gen_minifp Interp List Normalize Optimize Parser Pp QCheck QCheck_alcotest Typecheck
