test/test_util.ml: Alcotest Array Cheffp_util Float Gen Growable List Meter Printf QCheck QCheck_alcotest Rng Stats String Table
