test/test_benchmarks.ml: Alcotest Array Builtins Cheffp_benchmarks Cheffp_core Cheffp_fastapprox Cheffp_ir Cheffp_precision Float Interp List Parser Pp Printf
