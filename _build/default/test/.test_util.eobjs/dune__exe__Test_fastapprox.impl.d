test/test_fastapprox.ml: Alcotest Ast Builtins Cheffp_ad Cheffp_fastapprox Cheffp_ir Cheffp_precision Float Interp List Parser QCheck QCheck_alcotest Typecheck
