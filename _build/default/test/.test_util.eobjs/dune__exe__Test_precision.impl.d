test/test_precision.ml: Alcotest Cheffp_precision Config Cost Float Fp Int32 List QCheck QCheck_alcotest String
