(* End-to-end integration tests: miniature versions of the paper's
   experiments, asserting the *relationships* the evaluation section
   reports (estimates bound actuals, CHEF-FP agrees with ADAPT while
   using far less memory, the tuner meets thresholds, Algorithm 2
   predicts approximation errors). *)

open Cheffp_ir
module B = Cheffp_benchmarks
module E = Cheffp_core.Estimate
module Model = Cheffp_core.Model
module Tuner = Cheffp_core.Tuner
module Adapt = Cheffp_adapt.Adapt
module Fp = Cheffp_precision.Fp
module Config = Cheffp_precision.Config

(* Table I miniature: tuned configurations satisfy their thresholds. *)
let test_tuning_meets_threshold () =
  let cases =
    [
      ( "arclength",
        B.Arclength.program,
        B.Arclength.func_name,
        B.Arclength.args ~n:3_000,
        1e-5 );
      ( "simpsons",
        B.Simpsons.program,
        B.Simpsons.func_name,
        B.Simpsons.args ~a:0. ~b:Float.pi ~n:3_000,
        1e-6 );
    ]
  in
  List.iter
    (fun (name, prog, func, args, threshold) ->
      let o = Tuner.tune ~prog ~func ~args ~threshold () in
      Alcotest.(check bool) (name ^ " within threshold") true
        (o.Tuner.evaluation.Tuner.actual_error <= threshold);
      Alcotest.(check bool) (name ^ " demotes something") true
        (o.Tuner.demoted <> []))
    cases

(* Table III miniature: k-means per-variable demotion estimates bound the
   measured errors; the quantized input data is free to demote. *)
let test_kmeans_demotion_estimates () =
  let w = B.Kmeans.generate ~npoints:3_000 () in
  let est =
    E.estimate_error ~model:(Model.adapt ()) ~prog:B.Kmeans.program
      ~func:B.Kmeans.func_name ()
  in
  let report = E.run est (B.Kmeans.args w) in
  let estimated v = List.assoc v report.E.per_variable in
  let actual vars =
    (Tuner.evaluate ~prog:B.Kmeans.program ~func:B.Kmeans.func_name
       ~args:(B.Kmeans.args w)
       (Config.demote_all Config.double vars Fp.F32))
      .Tuner.actual_error
  in
  Alcotest.(check (float 0.)) "attributes estimate zero" 0.
    (estimated "attributes");
  Alcotest.(check (float 0.)) "attributes actual zero" 0.
    (actual [ "attributes" ]);
  Alcotest.(check bool) "clusters estimate bounds actual" true
    (actual [ "clusters" ] <= estimated "clusters");
  Alcotest.(check bool) "sum estimate bounds actual" true
    (actual [ "sum" ] <= estimated "sum")

(* Table IV miniature: the Algorithm-2 custom model predicts the error of
   swapping in FastApprox within an order of magnitude per option. *)
let test_blackscholes_approx_prediction () =
  let n = 100 in
  let w = B.Blackscholes.generate ~n () in
  let config = B.Blackscholes.Fast_log_sqrt_exp in
  let builtins = Builtins.create () in
  Cheffp_fastapprox.Fastapprox.register_builtins builtins;
  let deriv = Cheffp_ad.Deriv.default () in
  Cheffp_fastapprox.Fastapprox.register_derivatives deriv;
  let model =
    Model.approx_functions
      ~pairs:(B.Blackscholes.approx_pairs config)
      ~eval:B.Blackscholes.eval_exact ~eval_approx:B.Blackscholes.eval_approx
  in
  let est =
    E.estimate_error ~model ~deriv ~builtins
      ~prog:(B.Blackscholes.program B.Blackscholes.Exact)
      ~func:B.Blackscholes.price_func ()
  in
  let m_exact = B.Blackscholes.mathset_of B.Blackscholes.Exact in
  let m_fast = B.Blackscholes.mathset_of config in
  let actual = Array.make n 0. and estimated = Array.make n 0. in
  for i = 0 to n - 1 do
    let price m =
      B.Blackscholes.price_native m ~s:w.B.Blackscholes.sptprice.(i)
        ~k:w.B.Blackscholes.strike.(i) ~r:w.B.Blackscholes.rate.(i)
        ~v:w.B.Blackscholes.volatility.(i) ~t:w.B.Blackscholes.otime.(i)
        ~otype:w.B.Blackscholes.otype.(i)
    in
    actual.(i) <- Float.abs (price m_fast -. price m_exact);
    estimated.(i) <- (E.run est (B.Blackscholes.price_args w i)).E.total_error
  done;
  let a = Cheffp_util.Stats.mean actual in
  let e = Cheffp_util.Stats.mean estimated in
  Alcotest.(check bool) "mean estimate within 10x of mean actual" true
    (e /. a < 10. && a /. e < 10.);
  Alcotest.(check bool) "errors are small but real" true
    (a > 1e-8 && a < 1e-1)

(* Figure 4-8 miniature: same analysis answers, very different resource
   profiles. *)
let test_chef_vs_adapt_resources () =
  let n = 5_000 in
  let est =
    E.estimate_error ~model:(Model.adapt ()) ~prog:B.Arclength.program
      ~func:B.Arclength.func_name ()
  in
  let report = E.run est (B.Arclength.args ~n) in
  match
    Adapt.analyze (fun tape ->
        let module N = (val Adapt.num tape) in
        let module A = B.Arclength.Native (N) in
        A.run ~n)
  with
  | Error _ -> Alcotest.fail "unexpected OOM"
  | Ok adapt ->
      Alcotest.(check bool) "totals agree within 10%" true
        (let c = report.E.total_error and t = adapt.Adapt.total_error in
         Float.abs (c -. t) /. Float.max c t < 0.10);
      Alcotest.(check bool) "CHEF-FP uses 5x less memory" true
        (adapt.Adapt.tape_bytes > 5 * report.E.analysis_bytes)

(* Figure 7 miniature: ADAPT exhausts a memory budget that CHEF-FP fits
   comfortably. *)
let test_adapt_oom_crossover () =
  let w = B.Hpccg.generate ~nx:6 ~ny:6 ~nz:6 ~max_iter:8 () in
  let est =
    E.estimate_error ~model:(Model.adapt ())
      ~options:{ E.default_options with E.per_variable = false }
      ~prog:B.Hpccg.program ~func:B.Hpccg.func_name ()
  in
  let report = E.run est (B.Hpccg.args w) in
  let budget = 4 * report.E.analysis_bytes in
  (match
     Adapt.analyze ~memory_budget:budget (fun tape ->
         let module N = (val Adapt.num tape) in
         let module H = B.Hpccg.Native (N) in
         H.run w)
   with
  | Ok _ -> Alcotest.fail "ADAPT should exceed 4x CHEF-FP's footprint"
  | Error oom ->
      Alcotest.(check bool) "failed against the budget" true
        (oom.Adapt.budget = budget))

(* Figure 9 miniature: sensitivities inside the CG loop decay, the split
   cutoff lands strictly inside the iteration range, and the resulting
   split program is accurate. *)
let test_hpccg_sensitivity_split () =
  let max_iter = 30 in
  let w = B.Hpccg.generate ~nx:6 ~ny:6 ~nz:6 ~max_iter () in
  let est =
    E.estimate_error ~model:(Model.adapt ())
      ~options:{ E.default_options with E.track_iterations = `Loop "iter" }
      ~prog:B.Hpccg.program ~func:B.Hpccg.func_name ()
  in
  let report = E.run est (B.Hpccg.args w) in
  let demoted = [ "r"; "p"; "ap"; "sum"; "alpha"; "beta"; "rtrans"; "oldrtrans" ] in
  let cutoff =
    Cheffp_core.Sensitivity.split_cutoff ~records:report.E.per_iteration
      ~vars:demoted
      ~eps:(Fp.unit_roundoff Fp.F32)
      ~budget:1e-10 ~max_iter
  in
  Alcotest.(check bool) "cutoff strictly inside" true
    (cutoff > 1 && cutoff < max_iter);
  let full =
    Interp.run_float ~prog:B.Hpccg.program ~func:B.Hpccg.func_name (B.Hpccg.args w)
  in
  let split =
    Interp.run_float ~prog:B.Hpccg.program_split ~func:B.Hpccg.split_func_name
      (B.Hpccg.split_args w ~cutoff)
  in
  Alcotest.(check bool) "split satisfies threshold" true
    (Float.abs (full -. split) <= 1e-10);
  (* r's sensitivity decays across the loop *)
  let r_series = List.assoc "r" report.E.per_iteration in
  let early = List.assoc 2 r_series and late = List.assoc (max_iter - 1) r_series in
  Alcotest.(check bool) "sensitivity decays" true (late < early /. 1e3)

(* The estimation pipeline is reusable: one [estimate_error] serves many
   workload sizes. *)
let test_estimate_reuse_across_sizes () =
  let est =
    E.estimate_error ~model:(Model.adapt ()) ~prog:B.Simpsons.program
      ~func:B.Simpsons.func_name ()
  in
  let totals =
    List.map
      (fun n ->
        (E.run est (B.Simpsons.args ~a:0. ~b:Float.pi ~n)).E.total_error)
      [ 100; 1_000; 10_000 ]
  in
  Alcotest.(check bool) "errors grow with work" true
    (match totals with [ a; b; c ] -> a < b && b < c | _ -> false)

(* The inlining claim: analysis through the optimizer+compiler is faster
   than tree-walking the same generated function. *)
let test_compiled_analysis_faster () =
  let n = 20_000 in
  let est =
    E.estimate_error ~model:(Model.adapt ())
      ~options:{ E.default_options with E.per_variable = false }
      ~prog:B.Arclength.program ~func:B.Arclength.func_name ()
  in
  let args = B.Arclength.args ~n in
  let _, fast = Cheffp_util.Meter.time (fun () -> E.run est args) in
  let _, slow = Cheffp_util.Meter.time (fun () -> E.run_interpreted est args) in
  Alcotest.(check bool) "compiled at least 2x faster" true (slow > 2. *. fast)

let () =
  Alcotest.run "integration"
    [
      ( "paper-shapes",
        [
          Alcotest.test_case "tuning meets thresholds" `Slow
            test_tuning_meets_threshold;
          Alcotest.test_case "kmeans demotion estimates" `Slow
            test_kmeans_demotion_estimates;
          Alcotest.test_case "blackscholes approx prediction" `Slow
            test_blackscholes_approx_prediction;
          Alcotest.test_case "chef vs adapt resources" `Slow
            test_chef_vs_adapt_resources;
          Alcotest.test_case "adapt oom crossover" `Slow
            test_adapt_oom_crossover;
          Alcotest.test_case "hpccg sensitivity split" `Slow
            test_hpccg_sensitivity_split;
          Alcotest.test_case "estimate reuse" `Quick
            test_estimate_reuse_across_sizes;
          Alcotest.test_case "compiled analysis faster" `Slow
            test_compiled_analysis_faster;
        ] );
    ]
