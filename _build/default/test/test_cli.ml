(* End-to-end tests of the cheffp command-line tool: each subcommand is
   exercised against a temporary MiniFP file and its output inspected.
   The binary is located relative to this test executable inside
   _build. *)

let cheffp =
  Filename.concat
    (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin")
    "cheffp.exe"

let source =
  {|
func poly(x: f64, y: f64): f64 {
  var a: f64 = x * y + 0.1;
  var b: f64 = a * a - y;
  return b / (a + 2.0);
}

func looped(x: f64, n: int): f64 {
  var s: f64 = 0.0;
  var t: f64;
  for i in 1 .. n + 1 {
    t = x / itof(i);
    s = s + t * t;
  }
  return sqrt(s);
}
|}

let with_temp_file f =
  let path = Filename.temp_file "cheffp_cli" ".mfp" in
  let oc = open_out path in
  output_string oc source;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* Runs the binary, returns (exit code, combined output). *)
let run_cli args =
  let cmd =
    Printf.sprintf "%s %s 2>&1" (Filename.quote cheffp)
      (String.concat " " (List.map Filename.quote args))
  in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED n -> n | _ -> -1 in
  (code, Buffer.contents buf)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_binary_exists () =
  Alcotest.(check bool) ("binary at " ^ cheffp) true (Sys.file_exists cheffp)

let test_check () =
  with_temp_file (fun path ->
      let code, out = run_cli [ "check"; path ] in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "pretty-prints" true (contains out "func poly");
      Alcotest.(check bool) "counts" true (contains out "2 function(s), OK"))

let test_run () =
  with_temp_file (fun path ->
      let code, out = run_cli [ "run"; path; "--func"; "poly"; "0.5"; "2.0" ] in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "prints result" true (contains out "result:");
      Alcotest.(check bool) "prints cost" true (contains out "modelled cost"))

let test_run_demoted () =
  with_temp_file (fun path ->
      let code, out =
        run_cli
          [ "run"; path; "--func"; "poly"; "--demote"; "a:f32"; "0.5"; "2.0" ]
      in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "casts counted" true (contains out "implicit casts"))

let test_gradient () =
  with_temp_file (fun path ->
      let code, out = run_cli [ "gradient"; path; "--func"; "poly" ] in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "generates adjoint" true
        (contains out "func poly_grad" && contains out "out _d_x: f64");
      Alcotest.(check bool) "has push/pop" true
        (contains out "push" && contains out "pop"))

let test_analyze () =
  with_temp_file (fun path ->
      let code, out =
        run_cli [ "analyze"; path; "--func"; "looped"; "1.3"; "20" ]
      in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "estimate printed" true
        (contains out "estimated FP error");
      Alcotest.(check bool) "attribution printed" true (contains out "variable"))

let test_tune_and_emit () =
  with_temp_file (fun path ->
      let code, out =
        run_cli
          [ "tune"; path; "--func"; "looped"; "--threshold"; "1e-5"; "--emit";
            "1.3"; "50" ]
      in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "contributions printed" true
        (contains out "contributions");
      Alcotest.(check bool) "rewritten source printed" true
        (contains out "func looped_mixed"))

let test_search () =
  with_temp_file (fun path ->
      let code, out =
        run_cli
          [ "search"; path; "--func"; "looped"; "--threshold"; "1e-6"; "1.3";
            "50" ]
      in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "executions reported" true
        (contains out "program executions"))

let test_sensitivity () =
  with_temp_file (fun path ->
      let code, out =
        run_cli [ "sensitivity"; path; "--func"; "looped"; "1.3"; "30" ]
      in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "heatmap rows" true
        (contains out "iterations 0.."))

let test_errors_reported () =
  with_temp_file (fun path ->
      let code, out = run_cli [ "run"; path; "--func"; "nosuch" ] in
      Alcotest.(check bool) "nonzero exit" true (code <> 0);
      Alcotest.(check bool) "mentions the function" true
        (contains out "nosuch");
      let code2, _ = run_cli [ "run"; path; "--func"; "poly"; "1.0" ] in
      Alcotest.(check bool) "arity error" true (code2 <> 0));
  let code3, _ = run_cli [ "check"; "/nonexistent/file.mfp" ] in
  Alcotest.(check bool) "missing file" true (code3 <> 0)

let () =
  Alcotest.run "cli"
    [
      ( "subcommands",
        [
          Alcotest.test_case "binary exists" `Quick test_binary_exists;
          Alcotest.test_case "check" `Quick test_check;
          Alcotest.test_case "run" `Quick test_run;
          Alcotest.test_case "run --demote" `Quick test_run_demoted;
          Alcotest.test_case "gradient" `Quick test_gradient;
          Alcotest.test_case "analyze" `Quick test_analyze;
          Alcotest.test_case "tune --emit" `Quick test_tune_and_emit;
          Alcotest.test_case "search" `Quick test_search;
          Alcotest.test_case "sensitivity" `Quick test_sensitivity;
          Alcotest.test_case "errors" `Quick test_errors_reported;
        ] );
    ]
