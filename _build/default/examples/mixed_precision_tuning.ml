(* Mixed-precision tuning end to end (paper SS III + Table I).

   CHEF-FP estimates each variable's contribution to the total FP error;
   the tuner greedily demotes the cheapest variables to binary32 while
   the accumulated estimate respects the threshold, then validates the
   configuration bit-accurately and reports the modelled speedup.

     dune exec examples/mixed_precision_tuning.exe *)

module B = Cheffp_benchmarks
module Tuner = Cheffp_core.Tuner
module Config = Cheffp_precision.Config

let () =
  let n = 50_000 in
  let threshold = 1e-5 in
  Printf.printf "Tuning Arc Length (n = %d) for threshold %.0e\n\n" n threshold;
  let outcome =
    Tuner.tune ~prog:B.Arclength.program ~func:B.Arclength.func_name
      ~args:(B.Arclength.args ~n) ~threshold ()
  in
  print_endline "Estimated per-variable error contributions (ascending):";
  List.iter
    (fun (v, e) ->
      Printf.printf "  %-4s %.3e%s\n" v e
        (if List.mem v outcome.Tuner.demoted then "   -> demote to f32" else ""))
    outcome.Tuner.contributions;
  let ev = outcome.Tuner.evaluation in
  Printf.printf "\nChosen configuration: %s\n"
    (Config.to_string ev.Tuner.config);
  Printf.printf "Estimated error of the configuration: %.3e\n"
    outcome.Tuner.estimated_error;
  Printf.printf "Actual error (bit-accurate execution): %.3e\n"
    ev.Tuner.actual_error;
  Printf.printf "Modelled speedup: %.2fx  (implicit casts charged: %d)\n"
    ev.Tuner.modelled_speedup ev.Tuner.casts;
  Printf.printf "Within threshold: %b\n" (ev.Tuner.actual_error <= threshold)
