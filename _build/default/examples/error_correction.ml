(* Signed error estimation and CENA-style correction.

   With `Signed accumulation and the ADAPT model, CHEF-FP's per-variable
   terms stop being bounds and become first-order *predictions* of the
   error introduced by demoting each variable (Langlois' CENA idea). The
   prediction is exact for variables whose stored values are computed
   from unperturbed operands; a self-accumulating variable diverges from
   the reference trajectory after its first rounding, so it is predicted
   in order of magnitude only.

     dune exec examples/error_correction.exe *)

open Cheffp_ir
module E = Cheffp_core.Estimate
module Config = Cheffp_precision.Config
module Fp = Cheffp_precision.Fp

let source =
  {|
// A dot-product-with-normalisation kernel.
func kernel(xs: f64[], ys: f64[], n: int): f64 {
  var dot: f64 = 0.0;
  var nx: f64 = 0.0;
  var t: f64;
  for i in 0 .. n {
    t = xs[i] * ys[i];
    dot = dot + t;
    nx = nx + xs[i] * xs[i];
  }
  return dot / sqrt(nx);
}
|}

let () =
  let prog = Parser.parse_program source in
  Typecheck.check_program prog;
  let rng = Cheffp_util.Rng.create 4242L in
  let n = 64 in
  let xs = Array.init n (fun _ -> Cheffp_util.Rng.uniform rng ~lo:(-1.) ~hi:1.) in
  let ys = Array.init n (fun _ -> Cheffp_util.Rng.uniform rng ~lo:(-1.) ~hi:1.) in
  let args = [ Interp.Afarr xs; Interp.Afarr ys; Interp.Aint n ] in

  let est accumulation =
    E.estimate_error
      ~model:(Cheffp_core.Model.adapt ())
      ~options:{ E.default_options with accumulation }
      ~prog ~func:"kernel" ()
  in
  let signed = E.run (est `Signed) args in
  let absolute = E.run (est `Absolute) args in
  let reference = Interp.run_float ~prog ~func:"kernel" args in

  Printf.printf "%-10s %-14s %-14s %-14s %s\n" "demote" "bound (abs)"
    "prediction" "actual diff" "prediction quality";
  List.iter
    (fun v ->
      let mixed =
        Interp.run_float
          ~config:(Config.demote Config.double v Fp.F32)
          ~mode:Config.Extended ~prog ~func:"kernel" args
      in
      let actual = mixed -. reference in
      let bound =
        Option.value ~default:0. (List.assoc_opt v absolute.E.per_variable)
      in
      let pred =
        -.Option.value ~default:0. (List.assoc_opt v signed.E.per_variable)
      in
      let quality =
        if Float.abs actual < 1e-18 then "(no error)"
        else if Float.abs (pred -. actual) < 0.01 *. Float.abs actual then
          "exact (non-recurrent)"
        else "order of magnitude (accumulator)"
      in
      Printf.printf "%-10s %-14.3e %+-14.3e %+-14.3e %s\n" v bound pred actual
        quality)
    [ "xs"; "ys"; "t"; "dot"; "nx" ]
