(* Per-iteration sensitivity profiling (paper SS IV-4, Fig. 9).

   CHEF-FP tracks the sensitivity |value * adjoint| of every variable at
   each iteration of HPCCG's main CG loop. The profile shows sensitivity
   collapsing once CG converges, which motivates the split-loop
   mixed-precision rewrite: run the early iterations in binary64 and the
   tail with binary32 work vectors.

     dune exec examples/hpccg_sensitivity.exe *)

module B = Cheffp_benchmarks.Hpccg
module E = Cheffp_core.Estimate
module S = Cheffp_core.Sensitivity

let () =
  let max_iter = 40 in
  let w = B.generate ~nx:10 ~ny:10 ~nz:10 ~max_iter () in
  let est =
    E.estimate_error
      ~model:(Cheffp_core.Model.adapt ())
      ~options:{ E.default_options with track_iterations = `Loop "iter" }
      ~prog:B.program ~func:B.func_name ()
  in
  let report = E.run est (B.args w) in
  let wanted = [ "r"; "p"; "x"; "ap" ] in
  let records =
    List.filter
      (fun (v, _) -> List.mem (String.lowercase_ascii v) wanted)
      report.E.per_iteration
  in
  let _, series = S.normalized records in
  let per_row =
    List.map
      (fun (name, a) ->
        let m = Array.fold_left Float.max 0. a in
        (name, if m > 0. then Array.map (fun v -> v /. m) a else a))
      series
  in
  Printf.printf "HPCCG 10x10x10, %d CG iterations - per-variable sensitivity\n"
    max_iter;
  print_string (S.heatmap ~cols:60 per_row);
  let demoted = [ "r"; "p"; "ap"; "sum"; "alpha"; "beta"; "rtrans"; "oldrtrans" ] in
  let cutoff =
    S.split_cutoff ~records:report.E.per_iteration ~vars:demoted
      ~eps:(Cheffp_precision.Fp.unit_roundoff Cheffp_precision.Fp.F32)
      ~budget:1e-10 ~max_iter
  in
  Printf.printf
    "\nEstimated tail error of demoting the work vectors fits 1e-10 from \
     iteration %d:\n"
    cutoff;
  if cutoff < max_iter then
    Printf.printf
      "-> run iterations 1..%d in f64 and %d..%d with f32 work vectors\n"
      (cutoff - 1) cutoff max_iter
  else print_endline "-> no beneficial split at this threshold";
  let reference =
    Cheffp_ir.Interp.run_float ~prog:B.program ~func:B.func_name (B.args w)
  in
  let split =
    Cheffp_ir.Interp.run_float ~prog:B.program_split ~func:B.split_func_name
      (B.split_args w ~cutoff)
  in
  Printf.printf "full-precision result:  %.15g\n" reference;
  Printf.printf "split-loop result:      %.15g  (|diff| = %.3e)\n" split
    (Float.abs (split -. reference))
