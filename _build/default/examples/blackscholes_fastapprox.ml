(* Approximate-function error analysis (paper SS IV-5, Algorithm 2).

   Black-Scholes calls log, sqrt and exp; the FastApprox library offers
   cheap approximate versions. A custom CHEF-FP error model maps the
   input variable of each such call to the intrinsic it feeds and
   charges |d/dx * (f(x) - fastf(x))| -- estimating the error of the
   approximated program while only ever analyzing the exact one.

     dune exec examples/blackscholes_fastapprox.exe *)

module B = Cheffp_benchmarks.Blackscholes
module E = Cheffp_core.Estimate

let () =
  let n = 10 in
  let w = B.generate ~n () in
  let config = B.Fast_log_sqrt_exp in
  let pairs = B.approx_pairs config in
  Printf.printf "Variables feeding approximated intrinsics: %s\n\n"
    (String.concat ", " (List.map (fun (v, f) -> v ^ " -> " ^ f) pairs));
  let builtins = Cheffp_ir.Builtins.create () in
  Cheffp_fastapprox.Fastapprox.register_builtins builtins;
  let deriv = Cheffp_ad.Deriv.default () in
  Cheffp_fastapprox.Fastapprox.register_derivatives deriv;
  let model =
    Cheffp_core.Model.approx_functions ~pairs ~eval:B.eval_exact
      ~eval_approx:B.eval_approx
  in
  let est =
    E.estimate_error ~model ~deriv ~builtins ~prog:(B.program B.Exact)
      ~func:B.price_func ()
  in
  let m_exact = B.mathset_of B.Exact and m_fast = B.mathset_of config in
  Printf.printf "%-8s %-12s %-12s %-14s %-14s\n" "option" "exact" "approx"
    "actual err" "estimated err";
  for i = 0 to n - 1 do
    let price m =
      B.price_native m ~s:w.B.sptprice.(i) ~k:w.B.strike.(i) ~r:w.B.rate.(i)
        ~v:w.B.volatility.(i) ~t:w.B.otime.(i) ~otype:w.B.otype.(i)
    in
    let report = E.run est (B.price_args w i) in
    Printf.printf "%-8d %-12.6f %-12.6f %-14.3e %-14.3e\n" i (price m_exact)
      (price m_fast)
      (Float.abs (price m_fast -. price m_exact))
      report.E.total_error
  done
