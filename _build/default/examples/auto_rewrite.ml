(* Automatic mixed-precision source rewriting.

   The paper's §V-B lists source rewriting as manual future work
   ("we manually rewrite the source code to implement the mixed
   precision configurations suggested by CHEF-FP"). Owning the AST makes
   it a transformation: tune, rewrite the declared types, print the new
   program, and validate that it behaves exactly like the configured
   original.

     dune exec examples/auto_rewrite.exe *)

open Cheffp_ir
module B = Cheffp_benchmarks
module Tuner = Cheffp_core.Tuner
module Rewrite = Cheffp_core.Rewrite

let () =
  let n = 20_000 in
  let args = B.Simpsons.args ~a:0. ~b:Float.pi ~n in
  let threshold = 1e-6 in
  Printf.printf "Tuning simpsons (n = %d) for threshold %.0e...\n" n threshold;
  let o =
    Tuner.tune ~prog:B.Simpsons.program ~func:B.Simpsons.func_name ~args
      ~threshold ()
  in
  Printf.printf "demoted: %s\n\n" (String.concat ", " o.Tuner.demoted);

  let mixed = Rewrite.of_outcome B.Simpsons.program ~func:B.Simpsons.func_name o in
  print_endline "// automatically rewritten source:";
  print_endline (Pp.func_to_string mixed);

  (* The rewritten program needs no configuration: narrow declared types
     carry the precision. It must agree bit for bit with the original
     executed under the tuner's configuration. *)
  let prog' = Ast.add_func B.Simpsons.program mixed in
  Typecheck.check_program prog';
  let configured =
    Interp.run_float ~config:o.Tuner.evaluation.Tuner.config
      ~prog:B.Simpsons.program ~func:B.Simpsons.func_name args
  in
  let rewritten =
    Interp.run_float ~prog:prog' ~func:mixed.Ast.fname args
  in
  let reference =
    Interp.run_float ~prog:B.Simpsons.program ~func:B.Simpsons.func_name args
  in
  Printf.printf "\nreference (f64):        %.17g\n" reference;
  Printf.printf "configured original:    %.17g\n" configured;
  Printf.printf "rewritten source:       %.17g\n" rewritten;
  Printf.printf "rewritten = configured: %b (bit for bit)\n"
    (configured = rewritten);
  Printf.printf "error vs reference:     %.3e (threshold %.0e)\n"
    (Float.abs (rewritten -. reference))
    threshold
