examples/kmeans_app.ml: Array Cheffp_benchmarks Cheffp_precision Cheffp_util Printf
