examples/mixed_precision_tuning.mli:
