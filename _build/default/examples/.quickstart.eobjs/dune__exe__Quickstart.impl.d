examples/quickstart.ml: Cheffp_core Cheffp_ir Interp List Parser Pp Printf Typecheck
