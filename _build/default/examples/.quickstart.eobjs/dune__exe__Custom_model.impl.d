examples/custom_model.ml: Cheffp_core Cheffp_ir Cheffp_precision Interp List Parser Printf
