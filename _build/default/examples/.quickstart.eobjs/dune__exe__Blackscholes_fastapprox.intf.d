examples/blackscholes_fastapprox.mli:
