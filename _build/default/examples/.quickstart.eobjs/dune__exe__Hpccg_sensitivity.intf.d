examples/hpccg_sensitivity.mli:
