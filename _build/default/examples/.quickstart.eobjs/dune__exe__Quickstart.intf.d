examples/quickstart.mli:
