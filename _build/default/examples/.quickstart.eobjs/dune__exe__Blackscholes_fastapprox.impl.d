examples/blackscholes_fastapprox.ml: Array Cheffp_ad Cheffp_benchmarks Cheffp_core Cheffp_fastapprox Cheffp_ir Float List Printf String
