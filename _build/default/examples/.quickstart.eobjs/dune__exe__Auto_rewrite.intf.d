examples/auto_rewrite.mli:
