examples/auto_rewrite.ml: Ast Cheffp_benchmarks Cheffp_core Cheffp_ir Float Interp Pp Printf String Typecheck
