examples/error_correction.ml: Array Cheffp_core Cheffp_ir Cheffp_precision Cheffp_util Float Interp List Option Parser Printf Typecheck
