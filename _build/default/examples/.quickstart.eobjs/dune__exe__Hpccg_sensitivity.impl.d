examples/hpccg_sensitivity.ml: Array Cheffp_benchmarks Cheffp_core Cheffp_ir Cheffp_precision Float List Printf String
