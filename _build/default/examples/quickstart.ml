(* Quickstart: the paper's Listing 1, in MiniFP.

   Write a function, ask CHEF-FP to estimate its floating-point error,
   execute the generated code, and read the total error plus the
   gradient that came along for free.

     dune exec examples/quickstart.exe *)

open Cheffp_ir

let source =
  {|
func func1(x: f64, y: f64): f64 {
  var z: f64;
  z = x + y;
  return z;
}
|}

let () =
  let prog = Parser.parse_program source in
  Typecheck.check_program prog;

  (* auto df = clad::estimate_error(func); *)
  let df =
    Cheffp_core.Estimate.estimate_error
      ~model:(Cheffp_core.Model.adapt ()) (* Eq. 2, the ADAPT-FP model *)
      ~prog ~func:"func1" ()
  in

  (* The generated error-estimating adjoint is ordinary source code: *)
  print_endline "Generated code:";
  print_endline (Pp.func_to_string (Cheffp_core.Estimate.generated df));

  (* df.execute(x, y, &dx, &dy, fp_error); *)
  let report =
    Cheffp_core.Estimate.run df [ Interp.Aflt 1.95e-5; Interp.Aflt 1.37e-7 ]
  in
  Printf.printf "\nError in func1: %.6e\n" report.Cheffp_core.Estimate.total_error;
  List.iter
    (fun (p, d) -> Printf.printf "d func1 / d %s = %g\n" p d)
    report.Cheffp_core.Estimate.gradients;
  print_endline "\nPer-variable error attribution:";
  List.iter
    (fun (v, e) -> Printf.printf "  %-4s %.3e\n" v e)
    report.Cheffp_core.Estimate.per_variable
