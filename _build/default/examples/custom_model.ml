(* Custom error models: the paper's Listings 2-3.

   CHEF-FP's Error Model is pluggable. This example analyses the same
   function under (a) the default first-order Taylor model, (b) the
   ADAPT-FP model of Eq. 2, and (c) a user-written external model -- an
   ordinary OCaml function called from the generated code, exactly like
   the paper's [getErrorVal] C++ function.

     dune exec examples/custom_model.exe *)

open Cheffp_ir
module E = Cheffp_core.Estimate
module Model = Cheffp_core.Model
module Fp = Cheffp_precision.Fp

let source =
  {|
// A numerically delicate kernel: the smaller root of a quadratic.
func small_root(a: f64, b: f64, c: f64): f64 {
  var disc: f64 = b * b - 4.0 * a * c;
  var root: f64 = (-b + sqrt(disc)) / (2.0 * a);
  return root;
}
|}

let analyze name model =
  let prog = Parser.parse_program source in
  let est = E.estimate_error ~model ~prog ~func:"small_root" () in
  let report =
    E.run est [ Interp.Aflt 1.0; Interp.Aflt 1000.0; Interp.Aflt 0.25 ]
  in
  Printf.printf "%-28s total error = %.3e\n" name report.E.total_error;
  List.iter
    (fun (v, e) -> Printf.printf "    %-5s %.3e\n" v e)
    report.E.per_variable

let () =
  analyze "taylor(f32) [default]" (Model.taylor ());
  analyze "adapt(f32) [Eq. 2]" (Model.adapt ());
  analyze "adapt(f16)" (Model.adapt ~target:Fp.F16 ());

  (* The paper's Listing 3: getErrorVal(dx, x, name) as plain code. The
     generated adjoint calls back into this closure for every
     assignment; here it also logs what it sees. *)
  let get_error_val ~adj ~value ~var =
    let e = adj *. (value -. Fp.round Fp.F32 value) in
    Printf.printf "    getErrorVal dx=%-12.4g x=%-12.4g name=%s\n" adj value var;
    e
  in
  print_endline "external model (getErrorVal), with a trace of the callbacks:";
  analyze "external getErrorVal" (Model.external_ ~name:"demo" get_error_val)
