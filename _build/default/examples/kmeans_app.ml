(* Application-level validation of a kernel-level precision choice.

   Table III studies demoting variables of the k-Means *distance kernel*;
   the paper's Table I then reports that no app-level speedup was found
   within the 1e-6 threshold. This example closes that loop: run full
   Lloyd's clustering with the exact kernel and with the kernel's
   [clusters]/[sum] demoted to binary32, and compare what the
   application actually computes — cluster memberships and centroids.

     dune exec examples/kmeans_app.exe *)

module K = Cheffp_benchmarks.Kmeans
module Fp = Cheffp_precision.Fp

let () =
  let w = K.generate ~npoints:20_000 () in
  let exact = K.cluster w in
  let demoted = K.cluster ~distance:(K.rounded_distance Fp.F32 w) w in
  let flips = ref 0 in
  Array.iteri
    (fun p c -> if demoted.K.assignments.(p) <> c then incr flips)
    exact.K.assignments;
  let centroid_drift =
    Cheffp_util.Stats.max
      (Cheffp_util.Stats.abs_diffs exact.K.centroids demoted.K.centroids)
  in
  Printf.printf "points: %d, clusters: %d, features: %d\n" w.K.npoints
    w.K.nclusters w.K.nfeatures;
  Printf.printf "exact kernel:   ran %d Lloyd iterations\n"
    exact.K.iterations;
  Printf.printf "demoted kernel: ran %d Lloyd iterations\n"
    demoted.K.iterations;
  Printf.printf "membership flips: %d of %d (%.4f%%)\n" !flips w.K.npoints
    (100. *. float_of_int !flips /. float_of_int w.K.npoints);
  Printf.printf "max centroid drift: %.3e\n" centroid_drift;
  print_newline ();
  print_endline
    (if !flips = 0 && centroid_drift < 1e-3 then
       "The binary32 kernel reproduces the clustering: demoting the \
        kernel is safe\nat application level (and, per Table I, buys no \
        speedup at the 1e-6\nthreshold once cast overheads are counted \
        - the paper's conclusion)."
     else
       "The binary32 kernel changes the clustering: kernel-level error \
        estimates\nmust be validated against application output, which \
        is exactly what this\ncheck does.")
